// Package machine provides the deterministic virtual-time message-passing
// machine that stands in for the paper's Cray T3D/T3E. Each simulated
// processor runs as a goroutine with a local virtual clock; sends stamp their
// message with an arrival time computed from a latency/bandwidth model, and a
// blocking tagged receive advances the receiver's clock to the arrival time.
// The parallel time of a run is the maximum final clock — a discrete-event
// simulation whose event order (and hence result) is fully determined by the
// communication structure of the algorithm, never by host scheduling.
//
// Numerics still execute for real on the shared block matrix; channel
// (queue) synchronization gives the happens-before edges that make the shared
// accesses race-free, mirroring the data dependences the messages model.
package machine

import (
	"fmt"
	"math"
	"sync"
)

// Model is the per-machine cost model. Rates are flops/second for the three
// BLAS classes (the paper's measured DGEMM/DGEMV numbers), elements/second
// for row-interchange data movement, and seconds for message latency plus
// bytes/second bandwidth for communication.
type Model struct {
	Name      string
	Blas1Rate float64
	Blas2Rate float64 // DGEMV class
	Blas3Rate float64 // DGEMM class
	SwapRate  float64
	Latency   float64
	Bandwidth float64
	// TaskOverhead is charged once per executed task (scheduling/dispatch).
	TaskOverhead float64
	// HopLatency models the 3D-torus interconnect of the T3D/T3E: each
	// link between the source and destination node coordinates adds this
	// much to a message's flight time. 0 selects a distance-oblivious
	// (fully connected) network.
	HopLatency float64
}

// T3D returns the Cray-T3D model with the constants reported in Section 6:
// DGEMM 103 MFLOPS, DGEMV 85 MFLOPS at block size 25, shmem_put 2.7 µs
// overhead and 126 MB/s bandwidth.
func T3D() Model {
	return Model{
		Name:         "T3D",
		Blas1Rate:    45e6,
		Blas2Rate:    85e6,
		Blas3Rate:    103e6,
		SwapRate:     30e6,
		Latency:      2.7e-6,
		Bandwidth:    126e6,
		HopLatency:   1e-7,
		TaskOverhead: 2e-6,
	}
}

// T3E returns the Cray-T3E model: DGEMM 388 MFLOPS, DGEMV 255 MFLOPS,
// 0.5-2 µs latency and 500 MB/s peak (we use a 400 MB/s effective)
// bandwidth.
func T3E() Model {
	return Model{
		Name:         "T3E",
		Blas1Rate:    130e6,
		Blas2Rate:    255e6,
		Blas3Rate:    388e6,
		SwapRate:     90e6,
		Latency:      1e-6,
		Bandwidth:    400e6,
		HopLatency:   5e-8,
		TaskOverhead: 1e-6,
	}
}

// Unit returns a machine with unit rates, useful in tests where hand-computed
// virtual times must be easy to verify.
func Unit() Model {
	return Model{Name: "unit", Blas1Rate: 1, Blas2Rate: 1, Blas3Rate: 1, SwapRate: 1, Latency: 0, Bandwidth: math.Inf(1)}
}

// WithBlockSize adjusts the dense-kernel rates for the average dense-block
// width the factorization actually achieves. The paper's DGEMM/DGEMV rates
// are measured at block size 25 (Section 6); smaller blocks lose cache reuse
// and loop efficiency, larger ones gain a little until they saturate. This
// models the paper's Section 3.3 observation that amalgamation speeds the
// code up by enlarging supernodes, and its Section 6 remark that overlarge
// blocks only trade away parallelism.
func (m Model) WithBlockSize(bs float64) Model {
	if bs <= 0 {
		return m
	}
	f := (bs / (bs + 12)) * (37.0 / 25.0)
	if f > 1.15 {
		f = 1.15
	}
	m.Blas3Rate *= f
	// BLAS-2 kernels stream the matrix once; they are less cache-sensitive.
	g := (bs / (bs + 6)) * (31.0 / 25.0)
	if g > 1.1 {
		g = 1.1
	}
	m.Blas2Rate *= g
	return m
}

// ComputeSeconds converts flop-class tallies to seconds under the model.
func (m Model) ComputeSeconds(b1, b2, b3, sw int64) float64 {
	return float64(b1)/m.Blas1Rate + float64(b2)/m.Blas2Rate + float64(b3)/m.Blas3Rate + float64(sw)/m.SwapRate
}

// TransferSeconds is the wire time of one message of the given payload size.
func (m Model) TransferSeconds(bytes int) float64 {
	return m.Latency + float64(bytes)/m.Bandwidth
}

// Tag identifies a message stream between two processors. Src is implicit in
// the match (the same tag from two senders is disambiguated by Src).
type Tag struct {
	Src  int
	Kind uint8
	K    int // elimination step / panel
	Aux  int // task- or block-specific discriminator
}

type message struct {
	tag     Tag
	arrival float64
	bytes   int
	payload any
}

// TraceEvent is one recorded execution span on a processor's virtual
// timeline, for Gantt-chart style inspection of real runs.
type TraceEvent struct {
	Label      string
	Start, End float64
}

// Machine is a running virtual machine of P processors.
type Machine struct {
	P     int
	Model Model
	procs []*Proc
	dims  [3]int
	trace bool
}

// EnableTracing turns on per-processor span recording (see Proc.TraceSpan).
// Tracing reads clocks only and never perturbs the modeled times.
func (m *Machine) EnableTracing() { m.trace = true }

// Traces returns each processor's recorded spans (valid after Run).
func (m *Machine) Traces() [][]TraceEvent {
	out := make([][]TraceEvent, m.P)
	for i, p := range m.procs {
		out[i] = p.trace
	}
	return out
}

// New creates a machine with p processors arranged (for the torus-distance
// model) in a near-cubic 3D grid.
func New(p int, model Model) *Machine {
	m := &Machine{P: p, Model: model, dims: torusDims(p)}
	m.procs = make([]*Proc, p)
	for i := 0; i < p; i++ {
		m.procs[i] = &Proc{id: i, m: m}
		m.procs[i].cond = sync.NewCond(&m.procs[i].mu)
	}
	return m
}

// torusDims factors p into three near-equal dimensions for the 3D torus
// embedding (largest factors first).
func torusDims(p int) [3]int {
	best := [3]int{p, 1, 1}
	bestScore := p // smaller "spread" (max dim) is better
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		q := p / a
		for b := a; b*b <= q; b++ {
			if q%b != 0 {
				continue
			}
			c := q / b
			if c < bestScore || (c == bestScore && b < best[1]) {
				best, bestScore = [3]int{c, b, a}, c
			}
		}
	}
	return best
}

// coords returns the 3D torus coordinates of processor id.
func (m *Machine) coords(id int) [3]int {
	d := m.dims
	return [3]int{id % d[0], (id / d[0]) % d[1], id / (d[0] * d[1])}
}

// Hops returns the number of torus links between two processors (sum of the
// per-dimension ring distances).
func (m *Machine) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	a, b := m.coords(src), m.coords(dst)
	h := 0
	for i := 0; i < 3; i++ {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if ring := m.dims[i] - d; ring < d {
			d = ring
		}
		h += d
	}
	return h
}

// Proc returns processor i.
func (m *Machine) Proc(i int) *Proc { return m.procs[i] }

// Run executes body on every processor concurrently and returns the parallel
// time: the maximum final virtual clock. Any panic in a body is re-raised.
func (m *Machine) Run(body func(p *Proc)) float64 {
	var wg sync.WaitGroup
	panics := make([]any, m.P)
	for i := 0; i < m.P; i++ {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[p.id] = r
					// Wake every receiver so the run unwinds instead
					// of hanging.
					for _, q := range m.procs {
						q.poison()
					}
				}
			}()
			body(p)
		}(m.procs[i])
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
	max := 0.0
	for _, p := range m.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// MaxClock returns the current maximum clock across processors (valid after
// Run returns).
func (m *Machine) MaxClock() float64 {
	max := 0.0
	for _, p := range m.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// BufferHighWater returns the largest number of bytes of undelivered messages
// buffered at any single processor during the run — the empirical counterpart
// of the paper's Cbuffer/Rbuffer analysis (Theorem 2).
func (m *Machine) BufferHighWater() int {
	max := 0
	for _, p := range m.procs {
		if p.bufHigh > max {
			max = p.bufHigh
		}
	}
	return max
}

// Proc is one simulated processor.
type Proc struct {
	id    int
	m     *Machine
	clock float64

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []message
	bufBytes int
	bufHigh  int
	poisoned bool

	// Stats.
	SentBytes    int64
	SentMessages int64
	busy         float64

	trace []TraceEvent
}

// TraceSpan records the interval [start, current clock] under the given
// label when tracing is enabled on the machine.
func (p *Proc) TraceSpan(label string, start float64) {
	if p.m.trace {
		p.trace = append(p.trace, TraceEvent{Label: label, Start: start, End: p.clock})
	}
}

// ID returns the processor index.
func (p *Proc) ID() int { return p.id }

// Clock returns the local virtual time.
func (p *Proc) Clock() float64 { return p.clock }

// AdvanceTo moves the local clock forward to at least t.
func (p *Proc) AdvanceTo(t float64) {
	if t > p.clock {
		p.clock = t
	}
}

// Compute charges t seconds of local computation.
func (p *Proc) Compute(t float64) {
	p.clock += t
	p.busy += t
}

// ChargeFlops charges flop-class tallies at the machine model's rates.
func (p *Proc) ChargeFlops(b1, b2, b3, sw int64) {
	p.Compute(p.m.Model.ComputeSeconds(b1, b2, b3, sw))
}

// ChargeTask charges the per-task dispatch overhead.
func (p *Proc) ChargeTask() { p.Compute(p.m.Model.TaskOverhead) }

// BusySeconds returns the total computation time charged to this processor
// (excludes time spent blocked in receives and barriers).
func (p *Proc) BusySeconds() float64 { return p.busy }

// Send transmits payload to processor dst under the given tag. The sender is
// charged the injection overhead (latency); the message arrives at
// clock + latency + bytes/bandwidth.
func (p *Proc) Send(dst int, tag Tag, bytes int, payload any) {
	tag.Src = p.id
	arrival := p.clock + p.m.Model.TransferSeconds(bytes) +
		float64(p.m.Hops(p.id, dst))*p.m.Model.HopLatency
	p.clock += p.m.Model.Latency
	p.SentBytes += int64(bytes)
	p.SentMessages++
	p.m.procs[dst].deliver(message{tag: tag, arrival: arrival, bytes: bytes, payload: payload})
}

// Multicast sends payload to every destination in dsts (excluding p itself if
// present) using a binomial-tree cost model: destination i receives after
// ceil(log2(i+2)) hop times; the sender is charged one injection per tree
// level.
func (p *Proc) Multicast(dsts []int, tag Tag, bytes int, payload any) {
	tag.Src = p.id
	hop := p.m.Model.TransferSeconds(bytes)
	levels := 0
	sent := 0
	for _, d := range dsts {
		if d == p.id {
			continue
		}
		depth := bitsLen(sent + 1) // 1 for the first, 2 for next two, ...
		arrival := p.clock + float64(depth)*hop +
			float64(p.m.Hops(p.id, d))*p.m.Model.HopLatency
		p.m.procs[d].deliver(message{tag: tag, arrival: arrival, bytes: bytes, payload: payload})
		p.SentBytes += int64(bytes)
		p.SentMessages++
		sent++
		if depth > levels {
			levels = depth
		}
	}
	p.clock += float64(levels) * p.m.Model.Latency
}

// bitsLen returns the number of bits of x (floor(log2 x) + 1 for x >= 1).
func bitsLen(x int) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}

func (p *Proc) deliver(msg message) {
	p.mu.Lock()
	p.pending = append(p.pending, msg)
	p.bufBytes += msg.bytes
	if p.bufBytes > p.bufHigh {
		p.bufHigh = p.bufBytes
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *Proc) poison() {
	p.mu.Lock()
	p.poisoned = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Recv blocks until a message matching tag arrives, advances the local clock
// to its arrival time, and returns the payload.
func (p *Proc) Recv(tag Tag) any {
	p.mu.Lock()
	for {
		for i, msg := range p.pending {
			if msg.tag == tag {
				p.pending = append(p.pending[:i], p.pending[i+1:]...)
				p.bufBytes -= msg.bytes
				p.mu.Unlock()
				p.AdvanceTo(msg.arrival)
				return msg.payload
			}
		}
		if p.poisoned {
			p.mu.Unlock()
			panic(fmt.Sprintf("machine: processor %d aborted while waiting for %+v", p.id, tag))
		}
		p.cond.Wait()
	}
}

// Barrier synchronizes the given barrier object; all participants leave with
// clock = max(entry clocks) + 2*ceil(log2 P)*latency (a tree reduce +
// broadcast).
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	count   int
	gen     int
	max     float64
	release float64
	lat     float64
}

// NewBarrier creates a barrier for the whole machine.
func (m *Machine) NewBarrier() *Barrier {
	b := &Barrier{parties: m.P, lat: m.Model.Latency}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait enters the barrier.
func (b *Barrier) Wait(p *Proc) {
	b.mu.Lock()
	gen := b.gen
	if p.clock > b.max {
		b.max = p.clock
	}
	b.count++
	if b.count == b.parties {
		depth := 0
		for 1<<depth < b.parties {
			depth++
		}
		b.release = b.max + 2*float64(depth)*b.lat
		b.count = 0
		b.max = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	release := b.release
	b.mu.Unlock()
	p.AdvanceTo(release)
}
