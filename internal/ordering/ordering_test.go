package ordering

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sstar/internal/sparse"
)

func TestMaxTransversalAlreadyDiagonal(t *testing.T) {
	a := sparse.RandomSparse(50, 3, 1)
	perm, matched := MaxTransversal(a)
	if matched != 50 {
		t.Fatalf("matched = %d, want 50", matched)
	}
	if !sparse.IsPerm(perm) {
		t.Fatal("result is not a permutation")
	}
	if !a.PermuteRows(perm).HasZeroFreeDiagonal() {
		t.Fatal("permuted matrix lacks zero-free diagonal")
	}
}

func TestMaxTransversalAntiDiagonal(t *testing.T) {
	n := 6
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, n-1-i, 1)
	}
	a := coo.ToCSR()
	perm, matched := MaxTransversal(a)
	if matched != n {
		t.Fatalf("matched = %d, want %d", matched, n)
	}
	if !a.PermuteRows(perm).HasZeroFreeDiagonal() {
		t.Fatal("anti-diagonal not repaired")
	}
}

func TestMaxTransversalNeedsAugmenting(t *testing.T) {
	// Chain structure where the cheap pass picks wrong and augmenting paths
	// are required: col 0 hits rows {0,1}, col 1 hits row {0}.
	coo := sparse.NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 0, 1)
	coo.Add(0, 1, 1)
	a := coo.ToCSR()
	perm, matched := MaxTransversal(a)
	if matched != 2 {
		t.Fatalf("matched = %d, want 2", matched)
	}
	if !a.PermuteRows(perm).HasZeroFreeDiagonal() {
		t.Fatal("augmenting path case failed")
	}
}

func TestMaxTransversalSingular(t *testing.T) {
	// Column 1 is empty: only a partial transversal exists.
	coo := sparse.NewCOO(3, 3)
	coo.Add(0, 0, 1)
	coo.Add(1, 0, 1)
	coo.Add(2, 2, 1)
	a := coo.ToCSR()
	perm, matched := MaxTransversal(a)
	if matched != 2 {
		t.Fatalf("matched = %d, want 2", matched)
	}
	if !sparse.IsPerm(perm) {
		t.Fatal("partial transversal must still return a permutation")
	}
}

func TestMaxTransversalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		// Random matrix with a hidden permutation ensuring a full
		// transversal exists.
		coo := sparse.NewCOO(n, n)
		hidden := rng.Perm(n)
		for i := 0; i < n; i++ {
			coo.Add(i, hidden[i], 1)
			for k := 0; k < 3; k++ {
				coo.Add(i, rng.Intn(n), 1)
			}
		}
		a := coo.ToCSR()
		perm, matched := MaxTransversal(a)
		return matched == n && sparse.IsPerm(perm) && a.PermuteRows(perm).HasZeroFreeDiagonal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumDegreeIsPermutation(t *testing.T) {
	a := sparse.Grid2D(15, 15, false, sparse.GenOptions{Seed: 1})
	p := MinimumDegree(sparse.ATAPattern(a))
	if !sparse.IsPerm(p) {
		t.Fatal("minimum degree did not return a permutation")
	}
}

func TestMinimumDegreeReducesFill(t *testing.T) {
	// Arrow matrix: natural order fills completely; MD must eliminate the
	// dense row/col last, giving (near-)zero fill.
	n := 40
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
	}
	for i := 1; i < n; i++ {
		coo.Add(0, i, 1)
		coo.Add(i, 0, 1)
	}
	a := coo.ToCSR()
	pat := sparse.PatternOf(a) // already symmetric
	perm := MinimumDegree(pat)
	if !sparse.IsPerm(perm) {
		t.Fatal("not a permutation")
	}
	// The hub (variable 0) must be eliminated (essentially) last; it may
	// tie with the final leaf when only the two of them remain.
	if perm[0] < n-2 {
		t.Fatalf("hub eliminated at position %d, want >= %d", perm[0], n-2)
	}
}

func TestMinimumDegreeGridFill(t *testing.T) {
	// On a k x k grid, natural-order fill is O(k^3) band fill while MD fill
	// is much smaller; check MD beats natural ordering via symbolic
	// Cholesky column counts computed by brute force.
	a := sparse.Grid2D(12, 12, false, sparse.GenOptions{Seed: 2})
	pat := sparse.SymmetrizedPattern(a)
	perm := MinimumDegree(pat)
	natural := choleskyFill(pat, sparse.IdentityPerm(pat.N))
	md := choleskyFill(pat, perm)
	if md >= natural {
		t.Fatalf("MD fill %d not better than natural fill %d", md, natural)
	}
}

// choleskyFill counts nnz(L) of a symbolic Cholesky factorization of the
// permuted pattern, by brute-force row merging (test oracle only).
func choleskyFill(s *sparse.Pattern, perm []int) int {
	p := sparse.PermutePattern(s, perm, perm)
	n := p.N
	cols := make([][]int, n) // column structures below diagonal
	fill := 0
	// parent pointer via first off-diagonal nonzero
	rows := make([]map[int]bool, n)
	for i := 0; i < n; i++ {
		rows[i] = map[int]bool{}
	}
	for i := 0; i < n; i++ {
		for _, j := range p.Row(i) {
			if j <= i {
				rows[i][j] = true
			}
		}
	}
	for j := 0; j < n; j++ {
		_ = cols
		// Gather structure of row j from merges: standard up-looking
		// symbolic, quadratic but fine at test sizes.
		for i := j + 1; i < n; i++ {
			if rows[i][j] {
				fill++
				// Merge: row i gains the structure of column j's
				// parent step. Simplified: connect i to all t > j
				// that also contain j.
			}
		}
		// Propagate: find the first i > j with entry in column j, and add
		// all other entries of column j to row i (Liu's row merge).
		first := -1
		for i := j + 1; i < n; i++ {
			if rows[i][j] {
				if first == -1 {
					first = i
				} else {
					rows[i][first] = true
				}
			}
		}
	}
	return fill
}

func TestEliminationTreeChain(t *testing.T) {
	// Tridiagonal pattern: etree is a chain 0 -> 1 -> ... -> n-1.
	n := 10
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
		if i+1 < n {
			coo.Add(i+1, i, 1)
			coo.Add(i, i+1, 1)
		}
	}
	parent := EliminationTree(sparse.PatternOf(coo.ToCSR()))
	for i := 0; i < n-1; i++ {
		if parent[i] != i+1 {
			t.Fatalf("parent[%d] = %d, want %d", i, parent[i], i+1)
		}
	}
	if parent[n-1] != -1 {
		t.Fatal("root must have parent -1")
	}
	if TreeHeight(parent) != n {
		t.Fatalf("height = %d, want %d", TreeHeight(parent), n)
	}
}

func TestEliminationTreeDiagonal(t *testing.T) {
	// Diagonal matrix: forest of singletons.
	n := 5
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	parent := EliminationTree(sparse.PatternOf(coo.ToCSR()))
	for i := 0; i < n; i++ {
		if parent[i] != -1 {
			t.Fatalf("parent[%d] = %d, want -1", i, parent[i])
		}
	}
	if TreeHeight(parent) != 1 {
		t.Fatal("forest of singletons must have height 1")
	}
}

func TestPostorderProperties(t *testing.T) {
	parent := []int{2, 2, 4, 4, -1, 6, -1} // two trees
	perm := Postorder(parent)
	if !sparse.IsPerm(perm) {
		t.Fatal("postorder is not a permutation")
	}
	for v, p := range parent {
		if p >= 0 && perm[v] > perm[p] {
			t.Fatalf("child %d ordered after parent %d", v, p)
		}
	}
}

func TestPostorderSubtreesContiguous(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		parent := make([]int, n)
		for i := 0; i < n-1; i++ {
			parent[i] = i + 1 + rng.Intn(n-i-1) // parent has larger index
		}
		parent[n-1] = -1
		perm := Postorder(parent)
		if !sparse.IsPerm(perm) {
			return false
		}
		// Subtree of v = {u : v is an ancestor-or-self of u} must map to a
		// contiguous range ending at perm[v].
		anc := func(u, v int) bool {
			for u != -1 {
				if u == v {
					return true
				}
				u = parent[u]
			}
			return false
		}
		for v := 0; v < n; v++ {
			var size, lo int
			lo = n
			for u := 0; u < n; u++ {
				if anc(u, v) {
					size++
					if perm[u] < lo {
						lo = perm[u]
					}
				}
			}
			if perm[v] != lo+size-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnMinDegreeIsPermutation(t *testing.T) {
	for _, a := range []*sparse.CSR{
		sparse.Grid2D(12, 12, false, sparse.GenOptions{Seed: 40}),
		sparse.Circuit(200, 3, sparse.GenOptions{Seed: 41, StructuralDrop: 0.1}),
		sparse.RandomSparse(150, 3, 42),
	} {
		p := ColumnMinDegree(a)
		if !sparse.IsPerm(p) {
			t.Fatal("colmmd did not return a permutation")
		}
	}
}

func TestColumnMinDegreeArrowMatrix(t *testing.T) {
	// Arrow matrix: the dense hub column must go (nearly) last.
	n := 40
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
	}
	for i := 1; i < n; i++ {
		coo.Add(0, i, 1)
		coo.Add(i, 0, 1)
	}
	p := ColumnMinDegree(coo.ToCSR())
	if p[0] < n-2 {
		t.Fatalf("hub column eliminated at position %d, want near %d", p[0], n-1)
	}
}

func TestColumnMinDegreeComparableToMMD(t *testing.T) {
	// Both orderings should produce broadly comparable symbolic Cholesky
	// fill of A'A on a grid problem; colmmd must beat natural order.
	a := sparse.Grid2D(14, 14, false, sparse.GenOptions{Seed: 43})
	pat := sparse.SymmetrizedPattern(a)
	cm := ColumnMinDegree(a)
	md := MinimumDegree(pat)
	fillCM := choleskyFill(pat, cm)
	fillMD := choleskyFill(pat, md)
	fillNat := choleskyFill(pat, sparse.IdentityPerm(pat.N))
	if fillCM >= fillNat {
		t.Fatalf("colmmd fill %d not better than natural %d", fillCM, fillNat)
	}
	if float64(fillCM) > 2.5*float64(fillMD) {
		t.Fatalf("colmmd fill %d far worse than MD %d", fillCM, fillMD)
	}
}
