package ordering

import "sstar/internal/sparse"

// EliminationTree computes the elimination tree of a symmetric pattern using
// Liu's path-compression algorithm. parent[v] == -1 marks a root. Only the
// lower-triangular part of the pattern is consulted.
func EliminationTree(s *sparse.Pattern) []int {
	n := s.N
	parent := make([]int, n)
	ancestor := make([]int, n)
	for i := 0; i < n; i++ {
		parent[i] = -1
		ancestor[i] = -1
		for _, j := range s.Row(i) {
			if j >= i {
				continue
			}
			// Walk from j to the root of its current subtree, compressing.
			for j != -1 && j < i {
				next := ancestor[j]
				ancestor[j] = i
				if next == -1 {
					parent[j] = i
				}
				j = next
			}
		}
	}
	return parent
}

// Postorder returns a postordering of the forest given by parent pointers:
// the returned perm maps old index to new index, children before parents, and
// every subtree is a contiguous index range.
func Postorder(parent []int) []int {
	n := len(parent)
	firstChild := make([]int, n)
	sibling := make([]int, n)
	for i := range firstChild {
		firstChild[i] = -1
		sibling[i] = -1
	}
	// Link children in reverse so traversal visits lower indices first.
	for i := n - 1; i >= 0; i-- {
		p := parent[i]
		if p >= 0 {
			sibling[i] = firstChild[p]
			firstChild[p] = i
		}
	}
	perm := make([]int, n)
	pos := 0
	var stack []int
	visit := func(root int) {
		stack = append(stack[:0], root)
		// Iterative postorder: push node, then children; emit when node
		// re-surfaces with children done. Use explicit state.
		type frame struct {
			node  int
			child int
		}
		fs := []frame{{root, firstChild[root]}}
		for len(fs) > 0 {
			f := &fs[len(fs)-1]
			if f.child == -1 {
				perm[f.node] = pos
				pos++
				fs = fs[:len(fs)-1]
				continue
			}
			c := f.child
			f.child = sibling[c]
			fs = append(fs, frame{c, firstChild[c]})
		}
	}
	for i := 0; i < n; i++ {
		if parent[i] == -1 {
			visit(i)
		}
	}
	return perm
}

// TreeHeight returns the height (longest root-to-leaf path, in nodes) of the
// forest given by parent pointers; a single node has height 1. It is a cheap
// proxy for the critical-path length of the elimination.
func TreeHeight(parent []int) int {
	n := len(parent)
	depth := make([]int, n)
	var depthOf func(v int) int
	depthOf = func(v int) int {
		if depth[v] != 0 {
			return depth[v]
		}
		if parent[v] == -1 {
			depth[v] = 1
		} else {
			depth[v] = depthOf(parent[v]) + 1
		}
		return depth[v]
	}
	h := 0
	for v := 0; v < n; v++ {
		if d := depthOf(v); d > h {
			h = d
		}
	}
	return h
}
