package ordering

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sstar/internal/sparse"
)

// checkBTF verifies the defining property: after applying the permutations,
// every entry lies on or above its block diagonal.
func checkBTF(t *testing.T, a *sparse.CSR, rowPerm, colPerm, starts []int) {
	t.Helper()
	if !sparse.IsPerm(rowPerm) || !sparse.IsPerm(colPerm) {
		t.Fatal("BTF permutations invalid")
	}
	if starts[0] != 0 || starts[len(starts)-1] != a.N {
		t.Fatalf("block starts %v do not cover the matrix", starts)
	}
	blockOf := make([]int, a.N)
	for b := 0; b+1 < len(starts); b++ {
		for c := starts[b]; c < starts[b+1]; c++ {
			blockOf[c] = b
		}
	}
	p := a.Permute(rowPerm, colPerm)
	if !p.HasZeroFreeDiagonal() {
		t.Fatal("BTF lost the zero-free diagonal")
	}
	for i := 0; i < p.N; i++ {
		cols, _ := p.Row(i)
		for _, j := range cols {
			if blockOf[i] > blockOf[j] {
				t.Fatalf("entry (%d,%d) below the block diagonal (blocks %d > %d)",
					i, j, blockOf[i], blockOf[j])
			}
		}
	}
}

func TestBlockTriangularConstructed(t *testing.T) {
	// Build a 3-block upper triangular matrix, scramble it, and require the
	// decomposition to recover exactly 3 blocks.
	n := 12
	sizes := []int{5, 4, 3}
	coo := sparse.NewCOO(n, n)
	lo := 0
	for _, s := range sizes {
		// Strongly connected diagonal block: a cycle plus diagonal.
		for i := 0; i < s; i++ {
			coo.Add(lo+i, lo+i, 2)
			coo.Add(lo+i, lo+(i+1)%s, 1)
		}
		lo += s
	}
	// Couplings strictly above the block diagonal.
	coo.Add(0, 6, 1)
	coo.Add(5, 10, 1)
	a := coo.ToCSR()
	rng := rand.New(rand.NewSource(7))
	rp := rng.Perm(n)
	cp := rng.Perm(n)
	scrambled := a.Permute(rp, cp)
	rowPerm, colPerm, starts := BlockTriangular(scrambled)
	checkBTF(t, scrambled, rowPerm, colPerm, starts)
	if got := len(starts) - 1; got != 3 {
		t.Fatalf("recovered %d blocks, want 3 (starts %v)", got, starts)
	}
}

func TestBlockTriangularIrreducible(t *testing.T) {
	// A strongly connected matrix must come back as a single block.
	n := 9
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		coo.Add(i, (i+1)%n, 1) // one big cycle
	}
	_, _, starts := BlockTriangular(coo.ToCSR())
	if len(starts) != 2 {
		t.Fatalf("irreducible matrix split into %d blocks", len(starts)-1)
	}
}

func TestBlockTriangularDiagonal(t *testing.T) {
	// Fully decoupled: n blocks of size 1.
	n := 6
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	a := coo.ToCSR()
	rowPerm, colPerm, starts := BlockTriangular(a)
	checkBTF(t, a, rowPerm, colPerm, starts)
	if len(starts)-1 != n {
		t.Fatalf("diagonal matrix gave %d blocks, want %d", len(starts)-1, n)
	}
}

func TestBlockTriangularProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(50)
		a := sparse.RandomSparse(n, 1+rng.Intn(3), seed)
		rowPerm, colPerm, starts := BlockTriangular(a)
		if !sparse.IsPerm(rowPerm) || !sparse.IsPerm(colPerm) {
			return false
		}
		if starts[0] != 0 || starts[len(starts)-1] != n {
			return false
		}
		blockOf := make([]int, n)
		for b := 0; b+1 < len(starts); b++ {
			for c := starts[b]; c < starts[b+1]; c++ {
				blockOf[c] = b
			}
		}
		p := a.Permute(rowPerm, colPerm)
		if !p.HasZeroFreeDiagonal() {
			return false
		}
		for i := 0; i < n; i++ {
			cols, _ := p.Row(i)
			for _, j := range cols {
				if blockOf[i] > blockOf[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockTriangularDeepChain(t *testing.T) {
	// A long chain (each block feeds the next) must not overflow the
	// iterative Tarjan and must give n singleton blocks.
	n := 5000
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
		if i+1 < n {
			coo.Add(i, i+1, 1)
		}
	}
	a := coo.ToCSR()
	rowPerm, colPerm, starts := BlockTriangular(a)
	if len(starts)-1 != n {
		t.Fatalf("chain gave %d blocks, want %d", len(starts)-1, n)
	}
	checkBTF(t, a, rowPerm, colPerm, starts)
}
