package ordering

import (
	"sort"

	"sstar/internal/sparse"
)

// MinimumDegree computes a fill-reducing elimination ordering of a symmetric
// pattern using a quotient-graph minimum-degree algorithm with external
// degrees and indistinguishable-variable (supervariable) merging — the
// practical core of the multiple-minimum-degree ordering the paper applies to
// the structure of A^T A.
//
// The returned perm maps old index to new index: variable i is eliminated at
// step perm[i].
func MinimumDegree(s *sparse.Pattern) []int {
	n := s.N
	if n == 0 {
		return nil
	}
	g := newQuotientGraph(s)
	order := make([]int, n) // order[k] = variable eliminated at step k
	k := 0
	for k < n {
		p := g.popMinDegree()
		for _, v := range g.members(p) {
			order[k] = v
			k++
		}
		g.eliminate(p)
	}
	perm := make([]int, n)
	for pos, v := range order {
		perm[v] = pos
	}
	return perm
}

// quotientGraph is the working representation: variables and elements share
// the index space 0..n-1; an eliminated variable becomes the element with the
// same index.
type quotientGraph struct {
	n        int
	adjVar   [][]int // variable -> adjacent (principal) variables
	adjElem  [][]int // variable -> adjacent elements
	elemVars [][]int // element -> member principal variables
	weight   []int   // supervariable weight (0 once merged away)
	parent   []int   // supervariable merge forest: principal var of each var
	children [][]int // inverse of parent, for member expansion
	degree   []int   // external degree of principal variables
	state    []int8  // 0 = live variable, 1 = eliminated (element), 2 = merged
	buckets  [][]int // degree -> candidate principal variables (lazy)
	minDeg   int
	mark     []int
	stamp    int
}

const (
	stateLive int8 = iota
	stateElement
	stateMerged
)

func newQuotientGraph(s *sparse.Pattern) *quotientGraph {
	n := s.N
	g := &quotientGraph{
		n:        n,
		adjVar:   make([][]int, n),
		adjElem:  make([][]int, n),
		elemVars: make([][]int, n),
		weight:   make([]int, n),
		parent:   make([]int, n),
		children: make([][]int, n),
		degree:   make([]int, n),
		state:    make([]int8, n),
		buckets:  make([][]int, n+1),
		mark:     make([]int, n),
	}
	for i := 0; i < n; i++ {
		g.weight[i] = 1
		g.parent[i] = i
		row := s.Row(i)
		adj := make([]int, 0, len(row))
		for _, j := range row {
			if j != i {
				adj = append(adj, j)
			}
		}
		g.adjVar[i] = adj
		g.degree[i] = len(adj)
		g.buckets[len(adj)] = append(g.buckets[len(adj)], i)
		g.mark[i] = -1
	}
	return g
}

// members returns the original variables represented by principal variable p
// (p plus everything merged into it).
func (g *quotientGraph) members(p int) []int { return g.childList(p) }

// childList returns p plus every variable merged into p (recursively).
func (g *quotientGraph) childList(p int) []int {
	out := []int{}
	stack := []int{p}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		stack = append(stack, g.children[v]...)
	}
	// Keep deterministic order.
	sort.Ints(out)
	return out
}

// popMinDegree returns the live principal variable of minimum external
// degree.
func (g *quotientGraph) popMinDegree() int {
	for {
		for g.minDeg <= g.n && len(g.buckets[g.minDeg]) == 0 {
			g.minDeg++
		}
		if g.minDeg > g.n {
			panic("ordering: degree buckets exhausted with live variables remaining")
		}
		b := g.buckets[g.minDeg]
		v := b[len(b)-1]
		g.buckets[g.minDeg] = b[:len(b)-1]
		if g.state[v] == stateLive && g.degree[v] == g.minDeg {
			return v
		}
		// Stale bucket entry; skip.
	}
}

func (g *quotientGraph) push(v int) {
	d := g.degree[v]
	if d < 0 {
		d = 0
	}
	if d > g.n {
		d = g.n
	}
	g.buckets[d] = append(g.buckets[d], v)
	if d < g.minDeg {
		g.minDeg = d
	}
}

// eliminate turns principal variable p into an element and updates the
// degrees of every variable it touches.
func (g *quotientGraph) eliminate(p int) {
	g.state[p] = stateElement
	// Gather the element's variable set: adjacent live variables plus the
	// variables of adjacent elements (absorbing those elements).
	g.stamp++
	st := g.stamp
	g.mark[p] = st
	var vars []int
	for _, v := range g.adjVar[p] {
		v = g.find(v)
		if g.state[v] == stateLive && g.mark[v] != st {
			g.mark[v] = st
			vars = append(vars, v)
		}
	}
	for _, e := range g.adjElem[p] {
		for _, v := range g.elemVars[e] {
			v = g.find(v)
			if g.state[v] == stateLive && g.mark[v] != st {
				g.mark[v] = st
				vars = append(vars, v)
			}
		}
		g.elemVars[e] = nil // absorbed
	}
	sort.Ints(vars)
	g.elemVars[p] = vars
	// Update each member variable.
	for _, v := range vars {
		// Prune v's variable list: drop p, merged vars, and anything
		// covered by the new element.
		out := g.adjVar[v][:0]
		for _, w := range g.adjVar[v] {
			w = g.find(w)
			if w == v || w == p || g.state[w] != stateLive || g.mark[w] == st {
				continue
			}
			out = append(out, w)
		}
		g.adjVar[v] = dedupInts(out)
		// Element list: drop absorbed elements, add p.
		eout := g.adjElem[v][:0]
		for _, e := range g.adjElem[v] {
			if g.state[e] == stateElement && g.elemVars[e] != nil {
				eout = append(eout, e)
			}
		}
		g.adjElem[v] = append(dedupInts(eout), p)
	}
	// Supervariable detection: variables in this element with identical
	// adjacency are merged. Hash by adjacency contents.
	g.mergeIndistinguishable(vars)
	// Recompute external degrees of the (surviving) members.
	for _, v := range vars {
		if g.state[v] != stateLive {
			continue
		}
		g.degree[v] = g.externalDegree(v)
		g.push(v)
	}
}

// externalDegree computes the weighted size of v's neighborhood (union of its
// variable neighbors and the variables of its adjacent elements, minus v).
func (g *quotientGraph) externalDegree(v int) int {
	g.stamp++
	st := g.stamp
	g.mark[v] = st
	d := 0
	for _, w := range g.adjVar[v] {
		w = g.find(w)
		if g.state[w] == stateLive && g.mark[w] != st {
			g.mark[w] = st
			d += g.weight[w]
		}
	}
	for _, e := range g.adjElem[v] {
		for _, w := range g.elemVars[e] {
			w = g.find(w)
			if g.state[w] == stateLive && g.mark[w] != st {
				g.mark[w] = st
				d += g.weight[w]
			}
		}
	}
	return d
}

// mergeIndistinguishable merges variables among vars that have identical
// quotient-graph adjacency (they can be eliminated together with no extra
// fill).
func (g *quotientGraph) mergeIndistinguishable(vars []int) {
	if len(vars) < 2 {
		return
	}
	type sig struct {
		hash  uint64
		index int
	}
	sigs := make([]sig, 0, len(vars))
	for _, v := range vars {
		if g.state[v] != stateLive {
			continue
		}
		h := uint64(1469598103934665603)
		mix := func(x int) {
			h ^= uint64(x + 1)
			h *= 1099511628211
		}
		for _, w := range g.adjVar[v] {
			mix(g.find(w))
		}
		mix(-7)
		for _, e := range g.adjElem[v] {
			mix(e)
		}
		sigs = append(sigs, sig{h, v})
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].hash < sigs[j].hash })
	for i := 0; i < len(sigs); i++ {
		v := sigs[i].index
		if g.state[v] != stateLive {
			continue
		}
		for j := i + 1; j < len(sigs) && sigs[j].hash == sigs[i].hash; j++ {
			w := sigs[j].index
			if g.state[w] != stateLive || !g.sameAdjacency(v, w) {
				continue
			}
			// Merge w into v.
			g.state[w] = stateMerged
			g.parent[w] = v
			g.children[v] = append(g.children[v], w)
			g.weight[v] += g.weight[w]
			g.adjVar[w] = nil
			g.adjElem[w] = nil
		}
	}
}

// sameAdjacency reports whether live variables v and w have the same
// quotient-graph neighborhood (ignoring each other).
func (g *quotientGraph) sameAdjacency(v, w int) bool {
	av := g.liveAdj(v, w)
	aw := g.liveAdj(w, v)
	if len(av) != len(aw) {
		return false
	}
	for i := range av {
		if av[i] != aw[i] {
			return false
		}
	}
	ev := append([]int(nil), g.adjElem[v]...)
	ew := append([]int(nil), g.adjElem[w]...)
	sort.Ints(ev)
	sort.Ints(ew)
	if len(ev) != len(ew) {
		return false
	}
	for i := range ev {
		if ev[i] != ew[i] {
			return false
		}
	}
	return true
}

func (g *quotientGraph) liveAdj(v, skip int) []int {
	var out []int
	for _, w := range g.adjVar[v] {
		w = g.find(w)
		if g.state[w] == stateLive && w != v && w != skip {
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return dedupSortedInts(out)
}

// find resolves a possibly-merged variable to its principal representative.
func (g *quotientGraph) find(v int) int {
	for g.parent[v] != v {
		g.parent[v] = g.parent[g.parent[v]]
		v = g.parent[v]
	}
	return v
}

func dedupInts(xs []int) []int {
	sort.Ints(xs)
	return dedupSortedInts(xs)
}

func dedupSortedInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
