// Package ordering provides the preprocessing permutations S* applies before
// symbolic factorization: Duff's maximum-transversal algorithm (MC21) to make
// the diagonal structurally zero-free, a quotient-graph minimum-degree
// ordering of A^T A to reduce fill (the paper's "multiple minimum degree
// ordering for A^T A"), and elimination-tree utilities.
package ordering

import "sstar/internal/sparse"

// MaxTransversal computes a row permutation making the diagonal of the
// permuted matrix structurally zero-free, using Duff's MC21 algorithm:
// a cheap-assignment pass followed by depth-first augmenting paths.
//
// The returned perm maps old row index to new row index
// (row i of A becomes row perm[i] of P·A), so A.PermuteRows(perm) has entry
// (j, j) present whenever a full transversal exists. The second return is the
// size of the matching; it equals A.N exactly when the matrix has a full
// transversal (always true for structurally nonsingular matrices).
func MaxTransversal(a *sparse.CSR) ([]int, int) {
	n := a.N
	csc := a.ToCSC()
	rowOf := make([]int, n) // rowOf[j] = row matched to column j, or -1
	colOf := make([]int, n) // colOf[i] = column matched to row i, or -1
	for i := 0; i < n; i++ {
		rowOf[i] = -1
		colOf[i] = -1
	}
	// Cheap assignment: match each column to the first free row.
	matched := 0
	for j := 0; j < n; j++ {
		rows, _ := csc.Col(j)
		for _, i := range rows {
			if colOf[i] == -1 {
				colOf[i] = j
				rowOf[j] = i
				matched++
				break
			}
		}
	}
	// Augmenting DFS for the unmatched columns.
	visited := make([]int, n) // visited[i] = column stamp
	for i := range visited {
		visited[i] = -1
	}
	var augment func(j int) bool
	var stamp int
	augment = func(j int) bool {
		rows, _ := csc.Col(j)
		// First try a free row (cheap extension).
		for _, i := range rows {
			if colOf[i] == -1 {
				colOf[i] = j
				rowOf[j] = i
				return true
			}
		}
		// Then recurse through matched rows.
		for _, i := range rows {
			if visited[i] == stamp {
				continue
			}
			visited[i] = stamp
			if augment(colOf[i]) {
				colOf[i] = j
				rowOf[j] = i
				return true
			}
		}
		return false
	}
	for j := 0; j < n; j++ {
		if rowOf[j] == -1 {
			stamp = j
			if augment(j) {
				matched++
			}
		}
	}
	// Build the row permutation: matched row rowOf[j] moves to position j.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = -1
	}
	for j := 0; j < n; j++ {
		if rowOf[j] >= 0 {
			perm[rowOf[j]] = j
		}
	}
	// Unmatched rows (structurally singular case) fill the remaining slots.
	free := 0
	for i := 0; i < n; i++ {
		if perm[i] == -1 {
			for rowOf[free] != -1 {
				free++
			}
			perm[i] = free
			free++
		}
	}
	return perm, matched
}
