package ordering

import (
	"container/heap"

	"sstar/internal/sparse"
)

// ColumnMinDegree computes a fill-reducing column ordering for sparse LU
// directly on the structure of A, in the spirit of COLMMD/COLAMD: columns are
// eliminated greedily by (approximate) degree, and eliminating a column
// merges every row that contains it into a single "element" row — exactly the
// row-merge model of Gaussian elimination with row pivoting, and the implicit
// counterpart of running minimum degree on AᵀA without ever forming it.
//
// The returned perm maps old column index to elimination position.
func ColumnMinDegree(a *sparse.CSR) []int {
	n, m := a.N, a.M
	// Working row structures (column id lists) and column->rows incidence.
	rows := make([][]int32, n)
	rowLive := make([]bool, n)
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		rs := make([]int32, len(cols))
		for k, c := range cols {
			rs[k] = int32(c)
		}
		rows[i] = rs
		rowLive[i] = true
	}
	colRows := make([][]int32, m)
	for i := 0; i < n; i++ {
		for _, c := range rows[i] {
			colRows[c] = append(colRows[c], int32(i))
		}
	}
	colDead := make([]bool, m)
	// Approximate degree: sum over incident live rows of (row length - 1).
	// Each call also compacts the incidence list, pruning dead rows and the
	// duplicates left behind by element merging.
	rowMark := make([]int, n)
	for i := range rowMark {
		rowMark[i] = -1
	}
	stamp := 0
	deg := func(j int) int {
		stamp++
		d := 0
		out := colRows[j][:0]
		for _, r := range colRows[j] {
			if rowLive[r] && rowMark[r] != stamp {
				rowMark[r] = stamp
				out = append(out, r)
				d += len(rows[r]) - 1
			}
		}
		colRows[j] = out
		return d
	}
	pq := &degreeHeap{}
	heap.Init(pq)
	for j := 0; j < m; j++ {
		heap.Push(pq, degreeEntry{col: j, deg: deg(j)})
	}
	perm := make([]int, m)
	pos := 0
	marker := make([]int, m)
	for i := range marker {
		marker[i] = -1
	}
	for pq.Len() > 0 {
		e := heap.Pop(pq).(degreeEntry)
		j := e.col
		if colDead[j] {
			continue
		}
		if d := deg(j); d != e.deg {
			// Stale entry: re-push with the fresh degree (lazy updates).
			heap.Push(pq, degreeEntry{col: j, deg: d})
			continue
		}
		// Eliminate column j: merge its live rows into one element row.
		colDead[j] = true
		perm[j] = pos
		pos++
		var merged []int32
		var affected []int32
		first := int32(-1)
		for _, r := range colRows[j] {
			if !rowLive[r] {
				continue
			}
			if first < 0 {
				first = r
			}
			for _, c := range rows[r] {
				if int(c) != j && !colDead[c] && marker[c] != j {
					marker[c] = j
					merged = append(merged, c)
					affected = append(affected, c)
				}
			}
			rowLive[r] = false
			rows[r] = nil
		}
		if first >= 0 {
			// Revive the first row as the merged element.
			rowLive[first] = true
			rows[first] = merged
			for _, c := range merged {
				colRows[c] = append(colRows[c], first)
			}
		}
		// Lazy degree refresh: push fresh entries for the affected columns.
		for _, c := range affected {
			heap.Push(pq, degreeEntry{col: int(c), deg: deg(int(c))})
		}
	}
	// Columns never seen (empty columns) keep stable trailing positions.
	for j := 0; j < m; j++ {
		if !colDead[j] {
			perm[j] = pos
			pos++
		}
	}
	return perm
}

type degreeEntry struct {
	col int
	deg int
}

type degreeHeap []degreeEntry

func (h degreeHeap) Len() int { return len(h) }
func (h degreeHeap) Less(i, j int) bool {
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].col < h[j].col
}
func (h degreeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *degreeHeap) Push(x any)   { *h = append(*h, x.(degreeEntry)) }
func (h *degreeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
