package ordering

import "sstar/internal/sparse"

// BlockTriangular computes the block upper triangular form of a structurally
// nonsingular square matrix (the Dulmage–Mendelsohn fine decomposition for
// square matrices with a full transversal): a maximum transversal puts
// nonzeros on the diagonal, Tarjan's algorithm finds the strongly connected
// components of the matched digraph, and ordering the components
// topologically leaves every entry below the block diagonal zero.
//
// It returns the row permutation (old row -> new row, transversal composed
// with the component order), the column permutation (old column -> new
// column) and the block boundaries (starts[b] is the first column of block b;
// starts ends with n). Factoring only the diagonal blocks and
// back-substituting through the off-diagonal couplings solves the whole
// system — the decomposition production LU codes (MA48, UMFPACK) apply before
// factorization, and the structure the paper's Section 1 credits the Cedar
// approach with exploiting.
func BlockTriangular(a *sparse.CSR) (rowPerm, colPerm []int, starts []int) {
	n := a.N
	trans, _ := MaxTransversal(a)
	work := a.PermuteRows(trans)
	// Tarjan SCC over the digraph j -> k when work[j,k] != 0, j != k.
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int
	var sccs [][]int
	next := 0
	// Iterative Tarjan to survive deep graphs.
	type frame struct {
		v   int
		ei  int
		row []int
	}
	var dfs []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		cols, _ := work.Row(root)
		dfs = append(dfs[:0], frame{v: root, row: cols})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			advanced := false
			for f.ei < len(f.row) {
				w := f.row[f.ei]
				f.ei++
				if w == f.v {
					continue
				}
				if index[w] == unvisited {
					wc, _ := work.Row(w)
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w, row: wc})
					advanced = true
					break
				}
				if onStack[w] && low[f.v] > index[w] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// Finish v.
			v := f.v
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(sccs)
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := &dfs[len(dfs)-1]
				if low[p.v] > low[v] {
					low[p.v] = low[v]
				}
			}
		}
	}
	// Tarjan emits components successors-first; reversing yields a
	// topological order, so every cross edge points from an earlier block
	// to a later one — block *upper* triangular.
	nb := len(sccs)
	order := make([]int, nb) // order[emitted index] = block position
	for i := range order {
		order[i] = nb - 1 - i
	}
	colPerm = make([]int, n)
	starts = make([]int, nb+1)
	for i, scc := range sccs {
		starts[order[i]+1] = len(scc)
	}
	for b := 0; b < nb; b++ {
		starts[b+1] += starts[b]
	}
	fill := append([]int(nil), starts[:nb]...)
	for i, scc := range sccs {
		b := order[i]
		// Keep the members in ascending original order for determinism.
		sorted := append([]int(nil), scc...)
		sortInts(sorted)
		for _, v := range sorted {
			colPerm[v] = fill[b]
			fill[b]++
		}
	}
	// Rows follow: transversal first, then the same symmetric permutation.
	rowPerm = make([]int, n)
	for i := 0; i < n; i++ {
		rowPerm[i] = colPerm[trans[i]]
	}
	return rowPerm, colPerm, starts
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
