package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sanity bounds for declared sizes in exchange files: large enough for any
// matrix this library can factor, small enough that a corrupt or malicious
// header cannot demand a giant allocation.
const (
	maxReadDim = 1 << 24 // ~16M rows/columns
	maxReadNnz = 1 << 28 // ~268M entries
)

// ReadMatrixMarket parses a sparse matrix in Matrix Market coordinate format
// ("%%MatrixMarket matrix coordinate real general|symmetric"). Pattern-only
// files receive unit values. Symmetric files are expanded to full storage.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty matrix market stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad matrix market header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate format supported, got %q", header[2])
	}
	pattern := header[3] == "pattern"
	symmetric := len(header) > 4 && (header[4] == "symmetric" || header[4] == "skew-symmetric")
	skew := len(header) > 4 && header[4] == "skew-symmetric"

	// Skip comments, read size line.
	var n, m, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &n, &m, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %v", line, err)
		}
		break
	}
	if n <= 0 || m <= 0 || n > maxReadDim || m > maxReadDim {
		return nil, fmt.Errorf("sparse: bad dimensions %dx%d", n, m)
	}
	if nnz < 0 || nnz > maxReadNnz {
		return nil, fmt.Errorf("sparse: implausible entry count %d", nnz)
	}
	coo := NewCOO(n, m)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("sparse: bad indices in %q", line)
		}
		if i < 1 || i > n || j < 1 || j > m {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range for %dx%d matrix", i, j, n, m)
		}
		v := 1.0
		if !pattern {
			if len(f) < 3 {
				return nil, fmt.Errorf("sparse: missing value in %q", line)
			}
			var err error
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value in %q: %v", line, err)
			}
		}
		coo.Add(i-1, j-1, v)
		if symmetric && i != j {
			w := v
			if skew {
				w = -v
			}
			coo.Add(j-1, i-1, w)
		}
		read++
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, found %d", nnz, read)
	}
	return coo.ToCSR(), nil
}

// WriteMatrixMarket writes a in Matrix Market coordinate real general format.
func WriteMatrixMarket(w io.Writer, a *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", a.N, a.M, a.Nnz()); err != nil {
		return err
	}
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
