package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleCSR() *CSR {
	coo := NewCOO(4, 4)
	coo.Add(0, 0, 1)
	coo.Add(0, 2, 2)
	coo.Add(1, 1, 3)
	coo.Add(2, 0, 4)
	coo.Add(2, 2, 5)
	coo.Add(2, 3, 6)
	coo.Add(3, 3, 7)
	return coo.ToCSR()
}

func TestCOOToCSR(t *testing.T) {
	a := sampleCSR()
	if a.Nnz() != 7 {
		t.Fatalf("nnz = %d, want 7", a.Nnz())
	}
	if got := a.At(2, 3); got != 6 {
		t.Errorf("At(2,3) = %v, want 6", got)
	}
	if got := a.At(3, 0); got != 0 {
		t.Errorf("At(3,0) = %v, want 0", got)
	}
}

func TestCOODuplicatesSummed(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(0, 0, 2.5)
	coo.Add(1, 1, 1)
	a := coo.ToCSR()
	if a.Nnz() != 2 {
		t.Fatalf("nnz = %d, want 2", a.Nnz())
	}
	if got := a.At(0, 0); got != 3.5 {
		t.Errorf("At(0,0) = %v, want 3.5", got)
	}
}

func TestCOOAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range entry")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func TestCSRCSCTransposeRoundTrip(t *testing.T) {
	a := RandomSparse(60, 5, 1)
	b := a.ToCSC().ToCSR()
	if !equalCSR(a, b) {
		t.Fatal("CSR -> CSC -> CSR round trip changed the matrix")
	}
	tt := a.Transpose().Transpose()
	if !equalCSR(a, tt) {
		t.Fatal("double transpose changed the matrix")
	}
}

func TestTransposeEntries(t *testing.T) {
	a := sampleCSR()
	at := a.Transpose()
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if got := at.At(j, i); got != vals[k] {
				t.Fatalf("A^T(%d,%d) = %v, want %v", j, i, got, vals[k])
			}
		}
	}
}

func equalCSR(a, b *CSR) bool {
	if a.N != b.N || a.M != b.M || a.Nnz() != b.Nnz() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColInd {
		if a.ColInd[k] != b.ColInd[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

func TestPermuteRowsCols(t *testing.T) {
	a := sampleCSR()
	rp := []int{2, 0, 3, 1} // old row i -> new row rp[i]
	cp := []int{1, 2, 3, 0}
	b := a.Permute(rp, cp)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if got := b.At(rp[i], cp[j]); got != vals[k] {
				t.Fatalf("B(%d,%d) = %v, want %v", rp[i], cp[j], got, vals[k])
			}
		}
	}
	if b.Nnz() != a.Nnz() {
		t.Fatalf("permutation changed nnz: %d vs %d", b.Nnz(), a.Nnz())
	}
}

func TestPermuteIdentity(t *testing.T) {
	a := RandomSparse(40, 4, 7)
	b := a.Permute(IdentityPerm(40), IdentityPerm(40))
	if !equalCSR(a, b) {
		t.Fatal("identity permutation changed the matrix")
	}
}

func TestInversePermProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Perm(50)
		inv := InversePerm(p)
		for i, v := range p {
			if inv[v] != i {
				return false
			}
		}
		return IsPerm(inv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsPerm(t *testing.T) {
	if !IsPerm([]int{2, 0, 1}) {
		t.Error("valid permutation rejected")
	}
	if IsPerm([]int{0, 0, 1}) {
		t.Error("duplicate accepted")
	}
	if IsPerm([]int{0, 3, 1}) {
		t.Error("out of range accepted")
	}
}

func TestMulVec(t *testing.T) {
	a := sampleCSR()
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	a.MulVec(x, y)
	want := []float64{1*1 + 2*3, 3 * 2, 4*1 + 5*3 + 6*4, 7 * 4}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-14 {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestNorms(t *testing.T) {
	a := sampleCSR()
	if got, want := a.NormInf(), 15.0; got != want {
		t.Errorf("NormInf = %v, want %v", got, want)
	}
	want := math.Sqrt(1 + 4 + 9 + 16 + 25 + 36 + 49)
	if got := a.NormFrob(); math.Abs(got-want) > 1e-12 {
		t.Errorf("NormFrob = %v, want %v", got, want)
	}
}

func TestATAPattern(t *testing.T) {
	a := sampleCSR()
	p := ATAPattern(a)
	// Column 0 of A has rows {0,2}; their patterns are {0,2} and {0,2,3}.
	want := []int{0, 2, 3}
	got := p.Row(0)
	if len(got) != len(want) {
		t.Fatalf("ATA row 0 = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ATA row 0 = %v, want %v", got, want)
		}
	}
	// Symmetry of the A^T A pattern.
	for i := 0; i < p.N; i++ {
		for _, j := range p.Row(i) {
			found := false
			for _, k := range p.Row(j) {
				if k == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("ATA pattern not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestSymmetrizedPattern(t *testing.T) {
	a := sampleCSR()
	p := SymmetrizedPattern(a)
	// (0,2) and (2,0) both present; (2,3) present implies (3,2) in pattern.
	has := func(i, j int) bool {
		for _, k := range p.Row(i) {
			if k == j {
				return true
			}
		}
		return false
	}
	if !has(3, 2) || !has(2, 3) || !has(0, 2) || !has(2, 0) {
		t.Fatal("symmetrized pattern missing expected entries")
	}
}

func TestComputeStatsSymmetricPattern(t *testing.T) {
	// Structurally symmetric matrix: symmetry score must be 1.
	coo := NewCOO(3, 3)
	for i := 0; i < 3; i++ {
		coo.Add(i, i, 1)
	}
	coo.Add(0, 1, 2)
	coo.Add(1, 0, 3)
	a := coo.ToCSR()
	s := ComputeStats(a)
	if s.Symmetry != 1 {
		t.Errorf("symmetry = %v, want 1", s.Symmetry)
	}
	if !s.DiagFree {
		t.Error("diagonal should be zero-free")
	}
}

func TestComputeStatsNonsymmetric(t *testing.T) {
	coo := NewCOO(3, 3)
	for i := 0; i < 3; i++ {
		coo.Add(i, i, 1)
	}
	coo.Add(0, 1, 2)
	coo.Add(0, 2, 2)
	a := coo.ToCSR()
	s := ComputeStats(a)
	if s.Symmetry <= 1 {
		t.Errorf("symmetry = %v, want > 1 for nonsymmetric pattern", s.Symmetry)
	}
}

func TestHasZeroFreeDiagonal(t *testing.T) {
	a := sampleCSR()
	if !a.HasZeroFreeDiagonal() {
		t.Error("sample has a full diagonal")
	}
	coo := NewCOO(2, 2)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	if coo.ToCSR().HasZeroFreeDiagonal() {
		t.Error("antidiagonal matrix misreported as zero-free diagonal")
	}
}

func TestPermutePattern(t *testing.T) {
	a := sampleCSR()
	p := PatternOf(a)
	rp := []int{1, 3, 0, 2}
	cp := []int{3, 1, 0, 2}
	q := PermutePattern(p, rp, cp)
	b := a.Permute(rp, cp)
	pb := PatternOf(b)
	if len(q.Ind) != len(pb.Ind) {
		t.Fatalf("pattern nnz mismatch %d vs %d", len(q.Ind), len(pb.Ind))
	}
	for i := range q.Ind {
		if q.Ind[i] != pb.Ind[i] || q.Ptr[i%len(q.Ptr)] != pb.Ptr[i%len(pb.Ptr)] {
			t.Fatal("PermutePattern disagrees with CSR.Permute")
		}
	}
}
