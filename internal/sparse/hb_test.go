package sparse

import (
	"strings"
	"testing"
)

// A tiny hand-written RUA matrix:
//
//	[ 1.0  0    2.0 ]
//	[ 0    3.0  0   ]
//	[ 4.0  0    5.5 ]
//
// stored column-wise: col0 rows {1,3}, col1 rows {2}, col2 rows {1,3}.
const hbRUA = `Tiny test matrix                                                        TINY
             4             1             1             2
RUA                        3             3             5             0
(6I3)           (6I3)           (3D12.4)
  1  3  4  6
  1  3  2  1  3
  1.0000D+00  4.0000D+00  3.0000D+00
  2.0000D+00  5.5000D+00
`

func TestReadHarwellBoeingRUA(t *testing.T) {
	a, err := ReadHarwellBoeing(strings.NewReader(hbRUA))
	if err != nil {
		t.Fatal(err)
	}
	if a.N != 3 || a.M != 3 || a.Nnz() != 5 {
		t.Fatalf("shape %dx%d nnz %d", a.N, a.M, a.Nnz())
	}
	want := map[[2]int]float64{
		{0, 0}: 1, {2, 0}: 4, {1, 1}: 3, {0, 2}: 2, {2, 2}: 5.5,
	}
	for pos, v := range want {
		if got := a.At(pos[0], pos[1]); got != v {
			t.Fatalf("At(%d,%d) = %v, want %v", pos[0], pos[1], got, v)
		}
	}
}

const hbRSA = `Symmetric test                                                          SYM
             3             1             1             1
RSA                        2             2             3             0
(6I3)           (6I3)           (3E12.4)
  1  3  4
  1  2  2
  2.0000E+00 -1.0000E+00  2.0000E+00
`

func TestReadHarwellBoeingRSAExpansion(t *testing.T) {
	a, err := ReadHarwellBoeing(strings.NewReader(hbRSA))
	if err != nil {
		t.Fatal(err)
	}
	if a.Nnz() != 4 {
		t.Fatalf("nnz = %d, want 4 after symmetric expansion", a.Nnz())
	}
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Fatal("mirrored entry missing")
	}
}

const hbPUA = `Pattern test                                                            PAT
             3             1             1             0
PUA                        2             2             3             0
(6I3)           (6I3)
  1  3  4
  1  2  1
`

func TestReadHarwellBoeingPattern(t *testing.T) {
	a, err := ReadHarwellBoeing(strings.NewReader(hbPUA))
	if err != nil {
		t.Fatal(err)
	}
	if a.Nnz() != 3 {
		t.Fatalf("nnz = %d, want 3", a.Nnz())
	}
	if a.At(0, 0) != 1 || a.At(1, 0) != 1 || a.At(0, 1) != 1 {
		t.Fatal("pattern entries should be unit-valued")
	}
}

func TestReadHarwellBoeingErrors(t *testing.T) {
	cases := []string{
		"",                                      // empty
		"title only\n",                          // truncated
		hbRUA[:100],                             // short data
		strings.Replace(hbRUA, "RUA", "CUA", 1), // complex unsupported
		strings.Replace(hbRUA, "RUA", "RUE", 1), // elemental unsupported
	}
	for i, src := range cases {
		if _, err := ReadHarwellBoeing(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseHBFormat(t *testing.T) {
	cases := map[string]hbFormat{
		"13I6":      {13, 6},
		"16I5":      {16, 5},
		"3E26.18":   {3, 26},
		"1P3E25.17": {3, 25},
		"4D20.12":   {4, 20},
		"I8":        {1, 8},
	}
	for tok, want := range cases {
		got, ok := parseHBFormat(tok)
		if !ok || got != want {
			t.Errorf("parseHBFormat(%q) = %+v ok=%v, want %+v", tok, got, ok, want)
		}
	}
	if _, ok := parseHBFormat("A72"); ok {
		t.Error("character format must not parse as numeric")
	}
}
