package sparse

import "sort"

// Pattern is the structure of a square sparse matrix without values:
// Ptr/Ind in CSR-like layout with sorted indices per row.
type Pattern struct {
	N   int
	Ptr []int
	Ind []int
}

// Nnz returns the number of structural entries.
func (p *Pattern) Nnz() int { return len(p.Ind) }

// Row returns the (sorted) index list of row i.
func (p *Pattern) Row(i int) []int { return p.Ind[p.Ptr[i]:p.Ptr[i+1]] }

// PatternOf extracts the structure of a, dropping values.
func PatternOf(a *CSR) *Pattern {
	return &Pattern{
		N:   a.N,
		Ptr: append([]int(nil), a.RowPtr...),
		Ind: append([]int(nil), a.ColInd...),
	}
}

// EqualCSR reports whether a has exactly the nonzero structure p (same
// dimension, same row pointers, same column indices).
func (p *Pattern) EqualCSR(a *CSR) bool {
	if a == nil || p.N != a.N || p.N != a.M || len(p.Ind) != len(a.ColInd) {
		return false
	}
	for i, v := range p.Ptr {
		if a.RowPtr[i] != v {
			return false
		}
	}
	for k, v := range p.Ind {
		if a.ColInd[k] != v {
			return false
		}
	}
	return true
}

// ATAPattern returns the structure of A^T·A for a square or rectangular A.
// Entry (i, j) of A^T A is structurally nonzero when some row k of A has
// entries in both columns i and j. The result is M-by-M and symmetric.
func ATAPattern(a *CSR) *Pattern {
	m := a.M
	// Build column-wise access once.
	csc := a.ToCSC()
	marker := make([]int, m)
	for i := range marker {
		marker[i] = -1
	}
	ptr := make([]int, m+1)
	var ind []int
	for j := 0; j < m; j++ {
		rows, _ := csc.Col(j)
		start := len(ind)
		for _, k := range rows {
			cols, _ := a.Row(k)
			for _, i := range cols {
				if marker[i] != j {
					marker[i] = j
					ind = append(ind, i)
				}
			}
		}
		sort.Ints(ind[start:])
		ptr[j+1] = len(ind)
	}
	return &Pattern{N: m, Ptr: ptr, Ind: ind}
}

// SymmetrizedPattern returns the structure of A + A^T (a square A).
func SymmetrizedPattern(a *CSR) *Pattern {
	if a.N != a.M {
		panic("sparse: SymmetrizedPattern needs a square matrix")
	}
	t := a.Transpose()
	ptr := make([]int, a.N+1)
	var ind []int
	for i := 0; i < a.N; i++ {
		ra, _ := a.Row(i)
		rt, _ := t.Row(i)
		ind = appendUnion(ind, ra, rt)
		ptr[i+1] = len(ind)
	}
	return &Pattern{N: a.N, Ptr: ptr, Ind: ind}
}

// appendUnion appends the sorted union of sorted slices x and y to dst.
func appendUnion(dst []int, x, y []int) []int {
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			dst = append(dst, x[i])
			i++
		case x[i] > y[j]:
			dst = append(dst, y[j])
			j++
		default:
			dst = append(dst, x[i])
			i++
			j++
		}
	}
	dst = append(dst, x[i:]...)
	dst = append(dst, y[j:]...)
	return dst
}

// Stats holds structural statistics of a square sparse matrix, mirroring the
// columns of the paper's Table 1.
type Stats struct {
	Order     int
	Nnz       int
	Symmetry  float64 // |A| / |pattern(A) ∩ pattern(A^T)|: 1 = symmetric pattern, larger = more nonsymmetric
	DiagFree  bool    // true when the diagonal is structurally zero-free
	AvgPerRow float64
}

// ComputeStats returns structural statistics for a.
func ComputeStats(a *CSR) Stats {
	t := a.Transpose()
	match := 0
	for i := 0; i < a.N; i++ {
		ra, _ := a.Row(i)
		rt, _ := t.Row(i)
		match += intersectionSize(ra, rt)
	}
	sym := 0.0
	if match > 0 {
		sym = float64(a.Nnz()) / float64(match)
	}
	return Stats{
		Order:     a.N,
		Nnz:       a.Nnz(),
		Symmetry:  sym,
		DiagFree:  a.HasZeroFreeDiagonal(),
		AvgPerRow: float64(a.Nnz()) / float64(a.N),
	}
}

func intersectionSize(x, y []int) int {
	i, j, n := 0, 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// PermutePattern returns P_r·S·P_c^T of pattern s, analogous to CSR.Permute.
func PermutePattern(s *Pattern, rowPerm, colPerm []int) *Pattern {
	out := &Pattern{N: s.N, Ptr: make([]int, s.N+1), Ind: make([]int, len(s.Ind))}
	invRow := IdentityPerm(s.N)
	if rowPerm != nil {
		invRow = InversePerm(rowPerm)
	}
	pos := 0
	for newRow := 0; newRow < s.N; newRow++ {
		old := invRow[newRow]
		row := s.Row(old)
		start := pos
		for _, j := range row {
			nj := j
			if colPerm != nil {
				nj = colPerm[j]
			}
			out.Ind[pos] = nj
			pos++
		}
		sort.Ints(out.Ind[start:pos])
		out.Ptr[newRow+1] = pos
	}
	return out
}
