package sparse

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestGrid2DShape(t *testing.T) {
	a := Grid2D(10, 8, false, GenOptions{Seed: 1})
	if a.N != 80 || a.M != 80 {
		t.Fatalf("order = %dx%d, want 80x80", a.N, a.M)
	}
	if !a.HasZeroFreeDiagonal() {
		t.Fatal("grid matrix must have a zero-free diagonal")
	}
	// Interior node: 5-point stencil => <= 5 entries per row, >= 3.
	for i := 0; i < a.N; i++ {
		cols, _ := a.Row(i)
		if len(cols) < 3 || len(cols) > 5 {
			t.Fatalf("row %d has %d entries, want 3..5", i, len(cols))
		}
	}
}

func TestGrid2DDeterministic(t *testing.T) {
	a := Grid2D(12, 12, true, GenOptions{Seed: 42, Convection: 0.4})
	b := Grid2D(12, 12, true, GenOptions{Seed: 42, Convection: 0.4})
	if !equalCSR(a, b) {
		t.Fatal("generator is not deterministic for a fixed seed")
	}
	c := Grid2D(12, 12, true, GenOptions{Seed: 43, Convection: 0.4})
	if equalCSR(a, c) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestGrid2DDOFBlocks(t *testing.T) {
	a := Grid2D(6, 6, false, GenOptions{DOF: 3, Seed: 2})
	if a.N != 6*6*3 {
		t.Fatalf("order = %d, want %d", a.N, 6*6*3)
	}
	// Diagonal block of node 0 must be fully populated.
	for p := 0; p < 3; p++ {
		cols, _ := a.Row(p)
		count := 0
		for _, j := range cols {
			if j < 3 {
				count++
			}
		}
		if count != 3 {
			t.Fatalf("diagonal block row %d has %d of 3 entries", p, count)
		}
	}
}

func TestGrid2DStructuralDrop(t *testing.T) {
	a := Grid2D(20, 20, false, GenOptions{Seed: 3, StructuralDrop: 0.3})
	s := ComputeStats(a)
	if s.Symmetry <= 1.001 {
		t.Fatalf("symmetry = %v, want > 1 with structural drop", s.Symmetry)
	}
	if !s.DiagFree {
		t.Fatal("structural drop must not touch the diagonal")
	}
}

func TestGrid3DShape(t *testing.T) {
	a := Grid3D(5, 4, 3, GenOptions{Seed: 4})
	if a.N != 60 {
		t.Fatalf("order = %d, want 60", a.N)
	}
	if !a.HasZeroFreeDiagonal() {
		t.Fatal("grid3d must have zero-free diagonal")
	}
	maxRow := 0
	for i := 0; i < a.N; i++ {
		cols, _ := a.Row(i)
		if len(cols) > maxRow {
			maxRow = len(cols)
		}
	}
	if maxRow > 7 {
		t.Fatalf("7-point stencil produced a row with %d entries", maxRow)
	}
}

func TestCircuitShape(t *testing.T) {
	a := Circuit(500, 4, GenOptions{Seed: 5, Convection: 0.5, StructuralDrop: 0.1})
	if a.N != 500 {
		t.Fatalf("order = %d, want 500", a.N)
	}
	if !a.HasZeroFreeDiagonal() {
		t.Fatal("circuit matrix must have zero-free diagonal")
	}
	avg := float64(a.Nnz()) / 500
	if avg < 2 || avg > 12 {
		t.Fatalf("average row count %v out of expected band", avg)
	}
}

func TestDense(t *testing.T) {
	a := Dense(10, 6)
	if a.Nnz() != 100 {
		t.Fatalf("dense nnz = %d, want 100", a.Nnz())
	}
}

func TestRandomSparseDiagonal(t *testing.T) {
	a := RandomSparse(100, 3, 7)
	if !a.HasZeroFreeDiagonal() {
		t.Fatal("random sparse must keep a zero-free diagonal")
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	a := RandomSparse(30, 4, 8)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalCSR(a, b) {
		t.Fatal("matrix market round trip changed the matrix")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 2 2.0
3 3 2.0
2 1 -1.0
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.Nnz() != 5 {
		t.Fatalf("nnz = %d, want 5 after symmetric expansion", a.Nnz())
	}
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Fatal("symmetric expansion missing mirrored entry")
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 2 3
1 1
1 2
2 2
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != 1 {
		t.Fatal("pattern entries should get unit values")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"not a header\n2 2 1\n1 1 1.0\n",
	}
	for i, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error, got nil", i)
		}
	}
}

func TestMemoryCircuitHasDenseRows(t *testing.T) {
	a := MemoryCircuit(800, 1)
	if !a.HasZeroFreeDiagonal() {
		t.Fatal("memory circuit must have zero-free diagonal")
	}
	maxRow := 0
	for i := 0; i < a.N; i++ {
		cols, _ := a.Row(i)
		if len(cols) > maxRow {
			maxRow = len(cols)
		}
	}
	if maxRow < a.N/20 {
		t.Fatalf("densest row has %d entries; want a near-dense word line", maxRow)
	}
}

// Reader robustness: arbitrary garbage must produce errors, never panics and
// never absurd allocations.
func TestReadersNeverPanic(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("reader panicked on %q: %v", data, r)
			}
		}()
		_, _ = ReadMatrixMarket(bytes.NewReader(data))
		_, _ = ReadHarwellBoeing(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Adversarial headers, too.
	for _, s := range []string{
		"%%MatrixMarket matrix coordinate real general\n-1 -1 -1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n999999999999 2 1\n1 1 1.0\n",
		"t\n1 1 1 1\nRUA  2 2 100000000\n(6I3) (6I3) (3D12.4)\n",
		"t\n1 1 1 1\nRUA  999999999 2 2\n(6I3) (6I3) (3D12.4)\n",
		"t\n1 1 1 1\nRUA  2 2 2\n(6I3) (6I3) (3D12.4)\n  1  9  3\n  1  2\n 1.0 1.0\n",
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panicked on adversarial input: %v", r)
				}
			}()
			if _, err := ReadMatrixMarket(strings.NewReader(s)); err == nil && strings.HasPrefix(s, "%%") {
				t.Errorf("expected error for %q", s)
			}
			_, _ = ReadHarwellBoeing(strings.NewReader(s))
		}()
	}
}
