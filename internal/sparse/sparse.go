// Package sparse provides the sparse-matrix substrate for the S* sparse LU
// library: coordinate (COO), compressed-sparse-row (CSR) and
// compressed-sparse-column (CSC) storage, conversions, structural products
// such as A^T A, Matrix Market I/O, structural statistics, and the synthetic
// matrix generators used by the benchmark suite.
//
// Row and column indices are 0-based throughout.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Triplet is a single (row, column, value) entry of a COO matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// COO is a sparse matrix in coordinate form. Duplicate entries are allowed
// until Compact is called; most constructors call Compact themselves.
type COO struct {
	N       int // number of rows
	M       int // number of columns
	Entries []Triplet
}

// NewCOO returns an empty n-by-m coordinate matrix.
func NewCOO(n, m int) *COO {
	return &COO{N: n, M: m}
}

// Add appends entry (i, j, v). Panics if the indices are out of range.
func (a *COO) Add(i, j int, v float64) {
	if i < 0 || i >= a.N || j < 0 || j >= a.M {
		panic(fmt.Sprintf("sparse: entry (%d,%d) out of range for %dx%d matrix", i, j, a.N, a.M))
	}
	a.Entries = append(a.Entries, Triplet{i, j, v})
}

// Compact sorts the entries into row-major order and sums duplicates.
func (a *COO) Compact() {
	sort.Slice(a.Entries, func(p, q int) bool {
		ep, eq := a.Entries[p], a.Entries[q]
		if ep.Row != eq.Row {
			return ep.Row < eq.Row
		}
		return ep.Col < eq.Col
	})
	out := a.Entries[:0]
	for _, e := range a.Entries {
		if n := len(out); n > 0 && out[n-1].Row == e.Row && out[n-1].Col == e.Col {
			out[n-1].Val += e.Val
		} else {
			out = append(out, e)
		}
	}
	a.Entries = out
}

// CSR is a sparse matrix in compressed-sparse-row form. Row i occupies
// positions RowPtr[i]..RowPtr[i+1] of ColInd/Val, with column indices sorted
// in increasing order within each row.
type CSR struct {
	N, M   int
	RowPtr []int
	ColInd []int
	Val    []float64
}

// CSC is a sparse matrix in compressed-sparse-column form, the transpose
// layout of CSR.
type CSC struct {
	N, M   int
	ColPtr []int
	RowInd []int
	Val    []float64
}

// Nnz returns the number of stored entries.
func (a *CSR) Nnz() int { return len(a.ColInd) }

// Nnz returns the number of stored entries.
func (a *CSC) Nnz() int { return len(a.RowInd) }

// ToCSR converts the coordinate matrix to CSR form. The receiver is
// compacted as a side effect.
func (a *COO) ToCSR() *CSR {
	a.Compact()
	c := &CSR{
		N:      a.N,
		M:      a.M,
		RowPtr: make([]int, a.N+1),
		ColInd: make([]int, len(a.Entries)),
		Val:    make([]float64, len(a.Entries)),
	}
	for _, e := range a.Entries {
		c.RowPtr[e.Row+1]++
	}
	for i := 0; i < a.N; i++ {
		c.RowPtr[i+1] += c.RowPtr[i]
	}
	pos := make([]int, a.N)
	copy(pos, c.RowPtr[:a.N])
	for _, e := range a.Entries {
		p := pos[e.Row]
		c.ColInd[p] = e.Col
		c.Val[p] = e.Val
		pos[e.Row]++
	}
	return c
}

// Row returns the column indices and values of row i as sub-slices; callers
// must not modify the index slice.
func (a *CSR) Row(i int) ([]int, []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColInd[lo:hi], a.Val[lo:hi]
}

// Col returns the row indices and values of column j as sub-slices.
func (a *CSC) Col(j int) ([]int, []float64) {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	return a.RowInd[lo:hi], a.Val[lo:hi]
}

// At returns the value at (i, j), or 0 if no entry is stored there.
func (a *CSR) At(i, j int) float64 {
	cols, vals := a.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// ToCSC converts to compressed-sparse-column form.
func (a *CSR) ToCSC() *CSC {
	c := &CSC{
		N:      a.N,
		M:      a.M,
		ColPtr: make([]int, a.M+1),
		RowInd: make([]int, a.Nnz()),
		Val:    make([]float64, a.Nnz()),
	}
	for _, j := range a.ColInd {
		c.ColPtr[j+1]++
	}
	for j := 0; j < a.M; j++ {
		c.ColPtr[j+1] += c.ColPtr[j]
	}
	pos := make([]int, a.M)
	copy(pos, c.ColPtr[:a.M])
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			p := pos[j]
			c.RowInd[p] = i
			c.Val[p] = vals[k]
			pos[j]++
		}
	}
	return c
}

// ToCSR converts to compressed-sparse-row form.
func (c *CSC) ToCSR() *CSR {
	a := &CSR{
		N:      c.N,
		M:      c.M,
		RowPtr: make([]int, c.N+1),
		ColInd: make([]int, c.Nnz()),
		Val:    make([]float64, c.Nnz()),
	}
	for _, i := range c.RowInd {
		a.RowPtr[i+1]++
	}
	for i := 0; i < c.N; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	pos := make([]int, c.N)
	copy(pos, a.RowPtr[:c.N])
	for j := 0; j < c.M; j++ {
		rows, vals := c.Col(j)
		for k, i := range rows {
			p := pos[i]
			a.ColInd[p] = j
			a.Val[p] = vals[k]
			pos[i]++
		}
	}
	return a
}

// Transpose returns A^T in CSR form.
func (a *CSR) Transpose() *CSR {
	c := a.ToCSC()
	return &CSR{N: a.M, M: a.N, RowPtr: c.ColPtr, ColInd: c.RowInd, Val: c.Val}
}

// Clone returns a deep copy.
func (a *CSR) Clone() *CSR {
	b := &CSR{
		N:      a.N,
		M:      a.M,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColInd: append([]int(nil), a.ColInd...),
		Val:    append([]float64(nil), a.Val...),
	}
	return b
}

// PermuteRows returns P·A where row perm[i] of the result is row i of A;
// i.e. new row index of old row i is perm[i].
func (a *CSR) PermuteRows(perm []int) *CSR {
	if len(perm) != a.N {
		panic("sparse: row permutation length mismatch")
	}
	inv := InversePerm(perm)
	b := &CSR{N: a.N, M: a.M, RowPtr: make([]int, a.N+1)}
	for newRow := 0; newRow < a.N; newRow++ {
		old := inv[newRow]
		b.RowPtr[newRow+1] = b.RowPtr[newRow] + (a.RowPtr[old+1] - a.RowPtr[old])
	}
	b.ColInd = make([]int, a.Nnz())
	b.Val = make([]float64, a.Nnz())
	for newRow := 0; newRow < a.N; newRow++ {
		old := inv[newRow]
		cols, vals := a.Row(old)
		copy(b.ColInd[b.RowPtr[newRow]:], cols)
		copy(b.Val[b.RowPtr[newRow]:], vals)
	}
	return b
}

// PermuteCols returns A·P^T where column j of A becomes column perm[j] of the
// result.
func (a *CSR) PermuteCols(perm []int) *CSR {
	if len(perm) != a.M {
		panic("sparse: column permutation length mismatch")
	}
	b := a.Clone()
	for p, j := range b.ColInd {
		b.ColInd[p] = perm[j]
	}
	// Re-sort each row's entries by the new column indices.
	for i := 0; i < b.N; i++ {
		lo, hi := b.RowPtr[i], b.RowPtr[i+1]
		sortRowSegment(b.ColInd[lo:hi], b.Val[lo:hi])
	}
	return b
}

// Permute returns P_r·A·P_c^T with row permutation rowPerm and column
// permutation colPerm (either may be nil for identity).
func (a *CSR) Permute(rowPerm, colPerm []int) *CSR {
	b := a
	if rowPerm != nil {
		b = b.PermuteRows(rowPerm)
	}
	if colPerm != nil {
		b = b.PermuteCols(colPerm)
	}
	return b
}

func sortRowSegment(cols []int, vals []float64) {
	type pair struct {
		c int
		v float64
	}
	ps := make([]pair, len(cols))
	for k := range cols {
		ps[k] = pair{cols[k], vals[k]}
	}
	sort.Slice(ps, func(p, q int) bool { return ps[p].c < ps[q].c })
	for k := range ps {
		cols[k] = ps[k].c
		vals[k] = ps[k].v
	}
}

// InversePerm returns the inverse permutation of p.
func InversePerm(p []int) []int {
	inv := make([]int, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// IdentityPerm returns the identity permutation of length n.
func IdentityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// IsPerm reports whether p is a permutation of 0..len(p)-1.
func IsPerm(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// MulVec computes y = A·x.
func (a *CSR) MulVec(x, y []float64) {
	if len(x) != a.M || len(y) != a.N {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		s := 0.0
		for k, j := range cols {
			s += vals[k] * x[j]
		}
		y[i] = s
	}
}

// NormInf returns the infinity norm (max absolute row sum).
func (a *CSR) NormInf() float64 {
	max := 0.0
	for i := 0; i < a.N; i++ {
		_, vals := a.Row(i)
		s := 0.0
		for _, v := range vals {
			s += abs(v)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// NormFrob returns the Frobenius norm.
func (a *CSR) NormFrob() float64 {
	s := 0.0
	for _, v := range a.Val {
		s += v * v
	}
	return math.Sqrt(s)
}

func abs(x float64) float64 { return math.Abs(x) }

// HasZeroFreeDiagonal reports whether every diagonal position holds a stored
// entry (structural test; the value may still be numerically zero).
func (a *CSR) HasZeroFreeDiagonal() bool {
	if a.N != a.M {
		return false
	}
	for i := 0; i < a.N; i++ {
		cols, _ := a.Row(i)
		k := sort.SearchInts(cols, i)
		if k >= len(cols) || cols[k] != i {
			return false
		}
	}
	return true
}
