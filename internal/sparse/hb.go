package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadHarwellBoeing parses a matrix in the Harwell–Boeing exchange format —
// the format the paper's benchmark matrices (sherman5, orsreg1, ...) are
// distributed in. Supported types: R*A (real assembled) and P*A (pattern
// assembled), with U (unsymmetric), S (symmetric) or Z (skew) second letters;
// symmetric/skew storage is expanded to full. Right-hand sides, if present,
// are skipped.
func ReadHarwellBoeing(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	readLine := func() (string, error) {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return "", err
		}
		return strings.TrimRight(line, "\r\n"), nil
	}
	// Header line 1: title + key (ignored).
	if _, err := readLine(); err != nil {
		return nil, fmt.Errorf("sparse: hb: missing header: %v", err)
	}
	// Header line 2: card counts.
	line2, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("sparse: hb: missing card counts: %v", err)
	}
	counts := strings.Fields(line2)
	if len(counts) < 4 {
		return nil, fmt.Errorf("sparse: hb: bad card-count line %q", line2)
	}
	rhscrd := 0
	if len(counts) >= 5 {
		rhscrd, _ = strconv.Atoi(counts[4])
	}
	// Header line 3: type and dimensions.
	line3, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("sparse: hb: missing type line: %v", err)
	}
	if len(line3) < 3 {
		return nil, fmt.Errorf("sparse: hb: bad type line %q", line3)
	}
	mxtype := strings.ToUpper(strings.TrimSpace(line3[:3]))
	fields3 := strings.Fields(line3[3:])
	if len(fields3) < 3 {
		return nil, fmt.Errorf("sparse: hb: bad dimension fields %q", line3)
	}
	nrow, err1 := strconv.Atoi(fields3[0])
	ncol, err2 := strconv.Atoi(fields3[1])
	nnz, err3 := strconv.Atoi(fields3[2])
	if err1 != nil || err2 != nil || err3 != nil || nrow <= 0 || ncol <= 0 || nnz < 0 ||
		nrow > maxReadDim || ncol > maxReadDim || nnz > maxReadNnz {
		return nil, fmt.Errorf("sparse: hb: bad dimensions in %q", line3)
	}
	valued := mxtype[0] == 'R'
	if !valued && mxtype[0] != 'P' {
		return nil, fmt.Errorf("sparse: hb: unsupported value type %q (only R and P)", mxtype)
	}
	symmetric := mxtype[1] == 'S'
	skew := mxtype[1] == 'Z'
	if mxtype[2] != 'A' {
		return nil, fmt.Errorf("sparse: hb: only assembled matrices supported, got %q", mxtype)
	}
	// Header line 4: data formats.
	line4, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("sparse: hb: missing format line: %v", err)
	}
	formats := parseHBFormats(line4)
	if len(formats) < 2 {
		return nil, fmt.Errorf("sparse: hb: bad format line %q", line4)
	}
	ptrFmt, indFmt := formats[0], formats[1]
	var valFmt hbFormat
	if valued {
		if len(formats) < 3 {
			return nil, fmt.Errorf("sparse: hb: missing value format in %q", line4)
		}
		valFmt = formats[2]
	}
	// Optional header line 5 describes right-hand sides.
	if rhscrd > 0 {
		if _, err := readLine(); err != nil {
			return nil, fmt.Errorf("sparse: hb: missing rhs format line: %v", err)
		}
	}

	readInts := func(n int, f hbFormat) ([]int, error) {
		out := make([]int, 0, n)
		for len(out) < n {
			line, err := readLine()
			if err != nil {
				return nil, fmt.Errorf("sparse: hb: short data section: %v", err)
			}
			for p := 0; p+f.width <= len(line) && len(out) < n; p += f.width {
				field := strings.TrimSpace(line[p : p+f.width])
				if field == "" {
					continue
				}
				v, err := strconv.Atoi(field)
				if err != nil {
					return nil, fmt.Errorf("sparse: hb: bad integer %q", field)
				}
				out = append(out, v)
			}
		}
		return out, nil
	}
	readFloats := func(n int, f hbFormat) ([]float64, error) {
		out := make([]float64, 0, n)
		for len(out) < n {
			line, err := readLine()
			if err != nil {
				return nil, fmt.Errorf("sparse: hb: short value section: %v", err)
			}
			for p := 0; p+f.width <= len(line) && len(out) < n; p += f.width {
				field := strings.TrimSpace(line[p : p+f.width])
				if field == "" {
					continue
				}
				// Fortran D exponents.
				field = strings.ReplaceAll(strings.ReplaceAll(field, "D", "E"), "d", "e")
				v, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("sparse: hb: bad value %q", field)
				}
				out = append(out, v)
			}
		}
		return out, nil
	}

	colPtr, err := readInts(ncol+1, ptrFmt)
	if err != nil {
		return nil, err
	}
	rowInd, err := readInts(nnz, indFmt)
	if err != nil {
		return nil, err
	}
	var vals []float64
	if valued {
		vals, err = readFloats(nnz, valFmt)
		if err != nil {
			return nil, err
		}
	}

	coo := NewCOO(nrow, ncol)
	for j := 0; j < ncol; j++ {
		for p := colPtr[j] - 1; p < colPtr[j+1]-1; p++ {
			if p < 0 || p >= nnz {
				return nil, fmt.Errorf("sparse: hb: pointer out of range in column %d", j)
			}
			i := rowInd[p] - 1
			if i < 0 || i >= nrow {
				return nil, fmt.Errorf("sparse: hb: row index %d out of range", i+1)
			}
			v := 1.0
			if valued {
				v = vals[p]
			}
			coo.Add(i, j, v)
			if (symmetric || skew) && i != j {
				w := v
				if skew {
					w = -v
				}
				coo.Add(j, i, w)
			}
		}
	}
	return coo.ToCSR(), nil
}

// hbFormat is a simplified Fortran edit descriptor: repeat count and field
// width, e.g. (13I6) -> {count 13, width 6}, (1P3E25.17) -> {3, 25}.
type hbFormat struct {
	count int
	width int
}

// parseHBFormats extracts every parenthesized descriptor from a format line.
func parseHBFormats(line string) []hbFormat {
	var out []hbFormat
	for _, tok := range strings.FieldsFunc(line, func(r rune) bool { return r == '(' || r == ')' || r == ' ' || r == ',' }) {
		if f, ok := parseHBFormat(tok); ok {
			out = append(out, f)
		}
	}
	return out
}

func parseHBFormat(tok string) (hbFormat, bool) {
	tok = strings.ToUpper(strings.TrimSpace(tok))
	// Strip scale factors like "1P" prefixing the descriptor.
	if i := strings.Index(tok, "P"); i >= 0 && i+1 < len(tok) {
		tok = tok[i+1:]
	}
	for _, letter := range []string{"I", "E", "D", "F", "G"} {
		i := strings.Index(tok, letter)
		if i < 0 {
			continue
		}
		count := 1
		if i > 0 {
			c, err := strconv.Atoi(tok[:i])
			if err != nil {
				continue
			}
			count = c
		}
		rest := tok[i+1:]
		if j := strings.IndexByte(rest, '.'); j >= 0 {
			rest = rest[:j]
		}
		width, err := strconv.Atoi(rest)
		if err != nil || width <= 0 {
			continue
		}
		return hbFormat{count: count, width: width}, true
	}
	return hbFormat{}, false
}
