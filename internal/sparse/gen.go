package sparse

import (
	"math"
	"math/rand"
)

// GenOptions controls the synthetic matrix generators. The generators are
// deterministic for a fixed Seed, so every experiment is reproducible.
type GenOptions struct {
	// DOF is the number of unknowns per grid node (1 for scalar PDEs, 3-4
	// for structural/CFD problems). Node couplings become dense DOF x DOF
	// blocks, which is what gives CFD/structural matrices their relatively
	// large supernodes.
	DOF int
	// Convection sets the strength of the nonsymmetric first-order term:
	// the (i,j) and (j,i) couplings differ by a factor drawn from
	// [1-Convection, 1+Convection].
	Convection float64
	// StructuralDrop is the probability that a strictly-upper coupling is
	// dropped while its transpose partner is kept (and vice versa), making
	// the *pattern* nonsymmetric as in lnsp3937/lns3937.
	StructuralDrop float64
	// WeakDiagFraction is the fraction of rows whose diagonal entry is
	// scaled down hard so that partial pivoting must interchange rows.
	WeakDiagFraction float64
	// Anisotropy scales the y-direction (and z) couplings, as in stratified
	// reservoir/vavasis-style problems.
	Anisotropy float64
	// DiagCoupling restricts inter-node couplings to same-DOF pairs (a
	// diagonal DOF x DOF block), as in black-oil reservoir models where
	// only like unknowns couple across cells; node-internal blocks stay
	// full. No effect when DOF == 1.
	DiagCoupling bool
	// Seed for the deterministic RNG.
	Seed int64
}

func (o GenOptions) withDefaults() GenOptions {
	if o.DOF <= 0 {
		o.DOF = 1
	}
	if o.Anisotropy == 0 {
		o.Anisotropy = 1
	}
	if o.WeakDiagFraction == 0 {
		o.WeakDiagFraction = 0.05
	}
	return o
}

type genState struct {
	rng *rand.Rand
	o   GenOptions
	coo *COO
}

// coupling inserts the DOF x DOF blocks coupling nodes u and v (u != v),
// honouring structural drop and convection asymmetry. w is the base stencil
// weight.
func (g *genState) coupling(u, v int, w float64) {
	d := g.o.DOF
	dropUV, dropVU := false, false
	if g.o.StructuralDrop > 0 {
		if g.rng.Float64() < g.o.StructuralDrop {
			if g.rng.Intn(2) == 0 {
				dropUV = true
			} else {
				dropVU = true
			}
		}
	}
	skew := 1 + g.o.Convection*(2*g.rng.Float64()-1)
	for p := 0; p < d; p++ {
		for q := 0; q < d; q++ {
			if g.o.DiagCoupling && p != q {
				continue
			}
			// Couple DOF pairs with decaying magnitude off the block
			// diagonal so blocks are full but diagonally weighted.
			scale := w / (1 + 0.5*math.Abs(float64(p-q)))
			jitter := 0.8 + 0.4*g.rng.Float64()
			if !dropUV {
				g.coo.Add(u*d+p, v*d+q, scale*jitter*skew)
			}
			if !dropVU {
				g.coo.Add(v*d+p, u*d+q, scale*jitter/skew)
			}
		}
	}
}

func (g *genState) diagonal(u int, degree float64) {
	d := g.o.DOF
	for p := 0; p < d; p++ {
		val := degree * (1.5 + g.rng.Float64())
		if g.rng.Float64() < g.o.WeakDiagFraction {
			val *= 0.01 // force a pivot interchange here
		}
		for q := 0; q < d; q++ {
			if p == q {
				g.coo.Add(u*d+p, u*d+q, val)
			} else {
				g.coo.Add(u*d+p, u*d+q, 0.3*(2*g.rng.Float64()-1))
			}
		}
	}
}

// Grid2D generates the matrix of a 5-point (or 9-point when ninePoint) finite
// difference stencil on an nx-by-ny grid with the given options. This family
// models the reservoir-simulation matrices (orsreg1, saylr4, sherman*) and,
// with DOF > 1, the CFD/airfoil matrices (goodwin, e40r0100, af23560).
func Grid2D(nx, ny int, ninePoint bool, o GenOptions) *CSR {
	o = o.withDefaults()
	g := &genState{rng: rand.New(rand.NewSource(o.Seed)), o: o, coo: NewCOO(nx*ny*o.DOF, nx*ny*o.DOF)}
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			u := id(x, y)
			deg := 0.0
			if x+1 < nx {
				g.coupling(u, id(x+1, y), -1)
				deg += 2
			}
			if y+1 < ny {
				g.coupling(u, id(x, y+1), -o.Anisotropy)
				deg += 2 * o.Anisotropy
			}
			if ninePoint {
				if x+1 < nx && y+1 < ny {
					g.coupling(u, id(x+1, y+1), -0.5)
					deg++
				}
				if x > 0 && y+1 < ny {
					g.coupling(u, id(x-1, y+1), -0.5)
					deg++
				}
			}
			g.diagonal(u, math.Max(deg, 2))
		}
	}
	return g.coo.ToCSR()
}

// Grid3D generates a 7-point stencil on an nx-by-ny-by-nz grid. This family
// models 3D reservoir (sherman3-like) and, with DOF > 1, 3D solid/CFD
// matrices (ex11, raefsky4, inaccura).
func Grid3D(nx, ny, nz int, o GenOptions) *CSR {
	o = o.withDefaults()
	n := nx * ny * nz
	g := &genState{rng: rand.New(rand.NewSource(o.Seed)), o: o, coo: NewCOO(n*o.DOF, n*o.DOF)}
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				u := id(x, y, z)
				deg := 0.0
				if x+1 < nx {
					g.coupling(u, id(x+1, y, z), -1)
					deg += 2
				}
				if y+1 < ny {
					g.coupling(u, id(x, y+1, z), -o.Anisotropy)
					deg += 2 * o.Anisotropy
				}
				if z+1 < nz {
					g.coupling(u, id(x, y, z+1), -o.Anisotropy)
					deg += 2 * o.Anisotropy
				}
				g.diagonal(u, math.Max(deg, 2))
			}
		}
	}
	return g.coo.ToCSR()
}

// Circuit generates a circuit-simulation-like matrix (jpwh991 family): a
// random structurally near-symmetric pattern with avgDeg off-diagonal
// couplings per row, strong diagonal, and a few dense-ish rows modelling
// supply rails.
func Circuit(n, avgDeg int, o GenOptions) *CSR {
	o = o.withDefaults()
	g := &genState{rng: rand.New(rand.NewSource(o.Seed)), o: o, coo: NewCOO(n, n)}
	seen := make(map[int64]bool)
	key := func(i, j int) int64 { return int64(i)*int64(n) + int64(j) }
	addPair := func(i, j int) {
		if i == j || seen[key(i, j)] {
			return
		}
		seen[key(i, j)] = true
		seen[key(j, i)] = true
		v := 0.5 + g.rng.Float64()
		skew := 1 + o.Convection*(2*g.rng.Float64()-1)
		drop := g.rng.Float64() < o.StructuralDrop
		if !drop || g.rng.Intn(2) == 0 {
			g.coo.Add(i, j, -v*skew)
		}
		if !drop || g.rng.Intn(2) == 1 {
			g.coo.Add(j, i, -v/skew)
		}
	}
	// Local couplings: mostly near-diagonal (band-ish), like node numbering
	// of a physical netlist.
	for i := 0; i < n; i++ {
		for k := 0; k < avgDeg/2; k++ {
			span := 1 + g.rng.Intn(32)
			j := i + span
			if g.rng.Float64() < 0.15 {
				j = g.rng.Intn(n) // long-range coupling
			}
			if j < n {
				addPair(i, j)
			}
		}
	}
	// A few rails touching many nodes.
	rails := 2 + n/500
	for r := 0; r < rails; r++ {
		rail := g.rng.Intn(n)
		for k := 0; k < 10+g.rng.Intn(20); k++ {
			addPair(rail, g.rng.Intn(n))
		}
	}
	for i := 0; i < n; i++ {
		val := float64(avgDeg) * (1.5 + g.rng.Float64())
		if g.rng.Float64() < o.WeakDiagFraction {
			val *= 0.01
		}
		g.coo.Add(i, i, val)
	}
	return g.coo.ToCSR()
}

// MemoryCircuit generates a memplus-like memory-circuit matrix: a sparse
// local structure plus a set of nearly dense rows (word/bit lines touching a
// large share of the nodes). Such rows are the paper's Section 7 caveat: they
// drive the George–Ng static overestimate toward complete fill-in.
func MemoryCircuit(n int, seed int64) *CSR { return MemoryCircuitFrac(n, 10, seed) }

// MemoryCircuitFrac is MemoryCircuit with the word-line density exposed:
// each line touches n/frac columns.
func MemoryCircuitFrac(n, frac int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 8+rng.Float64())
		// Local couplings.
		for k := 0; k < 2; k++ {
			if j := i + 1 + rng.Intn(8); j < n {
				coo.Add(i, j, -0.5*rng.Float64())
				coo.Add(j, i, -0.5*rng.Float64())
			}
		}
	}
	// Word lines: a few rows touching a sizable share of the columns.
	lines := 2 + n/400
	for l := 0; l < lines; l++ {
		row := rng.Intn(n)
		for k := 0; k < n/frac; k++ {
			j := rng.Intn(n)
			if j != row {
				coo.Add(row, j, -0.1)
			}
		}
	}
	return coo.ToCSR()
}

// Dense generates a fully dense n-by-n matrix with random entries and a
// mildly dominant diagonal (the dense1000 test of Table 2).
func Dense(n int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 2*rng.Float64() - 1
			if i == j {
				v += 4
			}
			coo.Add(i, j, v)
		}
	}
	return coo.ToCSR()
}

// RandomSparse generates an unstructured random n-by-n sparse matrix with the
// given average number of off-diagonal entries per row and a zero-free
// diagonal. Used by property-based tests.
func RandomSparse(n, avgDeg int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4+2*rng.Float64())
		for k := 0; k < avgDeg; k++ {
			j := rng.Intn(n)
			if j != i {
				coo.Add(i, j, 2*rng.Float64()-1)
			}
		}
	}
	return coo.ToCSR()
}

// PerturbPattern returns a structural near-miss of a: roughly add random
// entries inserted and del random off-diagonal entries deleted, never
// touching the diagonal and never emptying a row or a column — the solver
// service's "same structure plus a few entries" tenant pattern. Retained
// entries keep their values; inserted entries get small random ones.
// Deterministic in seed.
func PerturbPattern(a *CSR, add, del int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	n := a.N
	rows := make([]map[int]float64, n)
	colCount := make([]int, a.M)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		rows[i] = make(map[int]float64, len(cols))
		for p, j := range cols {
			rows[i][j] = vals[p]
			colCount[j]++
		}
	}
	for k := 0; k < del; k++ {
		for try := 0; try < 64; try++ {
			i := rng.Intn(n)
			if len(rows[i]) < 2 {
				continue
			}
			j := rng.Intn(n)
			if j == i || colCount[j] < 2 {
				continue
			}
			if _, ok := rows[i][j]; !ok {
				continue
			}
			delete(rows[i], j)
			colCount[j]--
			break
		}
	}
	for k := 0; k < add; k++ {
		for try := 0; try < 64; try++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			if _, ok := rows[i][j]; ok {
				continue
			}
			rows[i][j] = 0.02 * (2*rng.Float64() - 1)
			colCount[j]++
			break
		}
	}
	coo := NewCOO(n, a.M)
	for i := 0; i < n; i++ {
		for j, v := range rows[i] {
			coo.Add(i, j, v)
		}
	}
	return coo.ToCSR()
}

// PerturbLocal returns a copy of square a with `del` random off-diagonal
// entries removed and `add` entries added along length-2 paths of the
// structure graph: a new entry (u, v) requires an existing pair (u, w),
// (w, v). This is the structure-preserving churn of a simulation service —
// a new device couples nodes that already interact through a neighbor — and
// unlike the uniform PerturbPattern it adds entries the factorization's fill
// largely anticipates, so incremental re-analysis sees a small propagation
// cone. Diagonal entries are never touched.
func PerturbLocal(a *CSR, add, del int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	n := a.N
	rows := make([]map[int]float64, n)
	colCount := make([]int, a.M)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		rows[i] = make(map[int]float64, len(cols))
		for p, j := range cols {
			rows[i][j] = vals[p]
			colCount[j]++
		}
	}
	for k := 0; k < del; k++ {
		for try := 0; try < 64; try++ {
			i := rng.Intn(n)
			if len(rows[i]) < 2 {
				continue
			}
			j := rng.Intn(n)
			if j == i || colCount[j] < 2 {
				continue
			}
			if _, ok := rows[i][j]; !ok {
				continue
			}
			delete(rows[i], j)
			colCount[j]--
			break
		}
	}
	// Adjacency snapshot for path-2 sampling (deletions above excluded).
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := range rows[i] {
			if j != i && j < n {
				adj[i] = append(adj[i], j)
			}
		}
	}
	for k := 0; k < add; k++ {
		for try := 0; try < 64; try++ {
			u := rng.Intn(n)
			if len(adj[u]) == 0 {
				continue
			}
			w := adj[u][rng.Intn(len(adj[u]))]
			if len(adj[w]) == 0 {
				continue
			}
			v := adj[w][rng.Intn(len(adj[w]))]
			if v == u {
				continue
			}
			if _, ok := rows[u][v]; ok {
				continue
			}
			rows[u][v] = 0.02 * (2*rng.Float64() - 1)
			colCount[v]++
			break
		}
	}
	coo := NewCOO(n, a.M)
	for i := 0; i < n; i++ {
		for j, v := range rows[i] {
			coo.Add(i, j, v)
		}
	}
	return coo.ToCSR()
}
