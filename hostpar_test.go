package sstar

import (
	"testing"
)

// factsBitIdentical compares two facade factorizations bit for bit: pivot
// sequence and every packed factor block.
func factsBitIdentical(t *testing.T, label string, a, b *Factorization) {
	t.Helper()
	for m := range a.fact.Piv {
		if a.fact.Piv[m] != b.fact.Piv[m] {
			t.Fatalf("%s: pivot %d differs", label, m)
		}
	}
	bm, bn := a.fact.BM, b.fact.BM
	for k := range bm.Diag {
		for i, v := range bm.Diag[k].Data {
			if bn.Diag[k].Data[i] != v {
				t.Fatalf("%s: diag block %d differs at %d", label, k, i)
			}
		}
		for j := range bm.LCol[k] {
			for i, v := range bm.LCol[k][j].Data {
				if bn.LCol[k][j].Data[i] != v {
					t.Fatalf("%s: L block (%d,%d) differs at %d", label, k, j, i)
				}
			}
		}
		for j := range bm.URow[k] {
			for i, v := range bm.URow[k][j].Data {
				if bn.URow[k][j].Data[i] != v {
					t.Fatalf("%s: U block (%d,%d) differs at %d", label, k, j, i)
				}
			}
		}
	}
}

func TestFactorizeHostParallelBitIdentical(t *testing.T) {
	a := GenGrid2D(13, 12, false, GenOptions{Seed: 81, Convection: 0.5})
	seq, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 1, 2, 4, 8} {
		o := DefaultOptions()
		o.HostWorkers = w
		par, err := Factorize(a, o)
		if err != nil {
			t.Fatalf("HostWorkers=%d: %v", w, err)
		}
		factsBitIdentical(t, "HostWorkers Factorize vs sequential", seq, par)
		b := rhs(a.N, int64(82+w))
		x, err := par.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := Residual(a, x, b); r > 1e-10 {
			t.Fatalf("HostWorkers=%d: residual %g", w, r)
		}
	}
}

// TestRefactorizeKeepsParallelPath: a handle built with HostWorkers > 1 must
// refactorize through the parallel driver and still produce factors
// bit-identical to a fresh sequential factorization of the new values.
func TestRefactorizeKeepsParallelPath(t *testing.T) {
	a := GenCircuit(200, 3, GenOptions{Seed: 83})
	o := DefaultOptions()
	o.HostWorkers = 4
	par, err := Factorize(a, o)
	if err != nil {
		t.Fatal(err)
	}
	if par.hostWorkers != 4 {
		t.Fatalf("handle lost its worker count: %d", par.hostWorkers)
	}
	a2 := a.Clone()
	for i := range a2.Val {
		a2.Val[i] *= 0.7
	}
	if err := par.Refactorize(a2); err != nil {
		t.Fatal(err)
	}
	seq, err := Factorize(a2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	factsBitIdentical(t, "parallel refactorize vs fresh sequential", seq, par)
}

// TestStructureKeyIgnoresHostWorkers: the worker count never changes the
// analysis or the factors, so it must not fragment structure-keyed caches.
func TestStructureKeyIgnoresHostWorkers(t *testing.T) {
	a := GenGrid2D(9, 9, false, GenOptions{Seed: 84})
	base := DefaultOptions()
	k0 := StructureKey(a, base)
	for _, w := range []int{1, 2, 8, 64} {
		o := base
		o.HostWorkers = w
		if k := StructureKey(a, o); k != k0 {
			t.Fatalf("HostWorkers=%d changed the structure key: %x vs %x", w, k, k0)
		}
	}
	// The virtual-machine routing knobs are execution strategy, not
	// structure: they never change factors, so they must not fragment
	// structure-keyed caches either.
	vm := base
	vm.Procs, vm.Machine, vm.Mapping, vm.TraceParallel = 4, T3D, Map1DCA, true
	if k := StructureKey(a, vm); k != k0 {
		t.Fatalf("Procs/Machine/Mapping changed the structure key: %x vs %x", k, k0)
	}
	// Sanity: options that do change results still change the key.
	o := base
	o.BlockSize = base.BlockSize + 5
	if StructureKey(a, o) == k0 {
		t.Fatal("BlockSize change did not change the structure key")
	}
}
