package sstar

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// stringsBuilder adapts a bytes.Buffer for write-then-read round trips.
type stringsBuilder struct{ buf bytes.Buffer }

func (s *stringsBuilder) Write(p []byte) (int, error) { return s.buf.Write(p) }
func (s *stringsBuilder) Reader() *strings.Reader     { return strings.NewReader(s.buf.String()) }

func rhs(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}
	return b
}

func TestFactorizeSolve(t *testing.T) {
	a := GenGrid2D(10, 10, false, GenOptions{Seed: 1, Convection: 0.3})
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(a.N, 2)
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, x, b); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
	if f.FillIn() <= int64(a.Nnz()) {
		t.Fatal("fill-in should exceed nnz(A)")
	}
	if f.Blocks() <= 0 || f.StaticFill() <= 0 {
		t.Fatal("metadata accessors broken")
	}
}

func TestFactorizeRejectsNonSquare(t *testing.T) {
	coo := NewCOO(2, 3)
	coo.Add(0, 0, 1)
	if _, err := Factorize(coo.ToCSR(), DefaultOptions()); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestSkipOrderingRequiresDiagonal(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	o := DefaultOptions()
	o.SkipOrdering = true
	if _, err := Factorize(coo.ToCSR(), o); err == nil {
		t.Fatal("expected zero-free diagonal error")
	}
	// Without SkipOrdering the transversal repairs it.
	if _, err := Factorize(coo.ToCSR(), DefaultOptions()); err != nil {
		t.Fatalf("transversal should have repaired the diagonal: %v", err)
	}
}

func TestRefactorize(t *testing.T) {
	a := GenCircuit(150, 3, GenOptions{Seed: 3})
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Same pattern, shifted values.
	a2 := a.Clone()
	for i := range a2.Val {
		a2.Val[i] *= 1.5
	}
	if err := f.Refactorize(a2); err != nil {
		t.Fatal(err)
	}
	b := rhs(a.N, 4)
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a2, x, b); r > 1e-10 {
		t.Fatalf("refactorized residual %g", r)
	}
	if err := f.Refactorize(GenDense(3, 1)); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestSolveLengthCheck(t *testing.T) {
	a := GenDense(10, 5)
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(make([]float64, 3)); err == nil {
		t.Fatal("expected rhs length error")
	}
}

func TestFactorizeParallelAllMappings(t *testing.T) {
	a := GenGrid2D(12, 12, false, GenOptions{Seed: 6, Convection: 0.4})
	b := rhs(a.N, 7)
	var ref []float64
	for _, mapping := range []Mapping{Map1DCA, Map1DRAPID, Map2D, Map2DSync} {
		f, stats, err := FactorizeParallel(a, ParOptions{
			Options: DefaultOptions(),
			Procs:   4,
			Machine: T3E,
			Mapping: mapping,
		})
		if err != nil {
			t.Fatalf("%s: %v", mapping, err)
		}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := Residual(a, x, b); r > 1e-10 {
			t.Fatalf("%s: residual %g", mapping, r)
		}
		if stats.ParallelTime <= 0 || stats.MFLOPS <= 0 {
			t.Fatalf("%s: bad stats %+v", mapping, stats)
		}
		if ref == nil {
			ref = x
		} else {
			for i := range x {
				if d := x[i] - ref[i]; d > 1e-8 || d < -1e-8 {
					t.Fatalf("%s: solution differs from reference at %d", mapping, i)
				}
			}
		}
	}
}

// TestFactorizeVirtualFold: the folded surface — Options.Procs routes
// Factorize through the virtual machine, RunStats surfaces the modeled
// statistics, and the deprecated FactorizeParallel wrapper agrees with it.
func TestFactorizeVirtualFold(t *testing.T) {
	a := GenGrid2D(12, 12, false, GenOptions{Seed: 6, Convection: 0.4})
	b := rhs(a.N, 7)
	o := DefaultOptions()
	o.Procs, o.Machine, o.Mapping = 4, T3E, Map2D
	f, err := Factorize(a, o)
	if err != nil {
		t.Fatal(err)
	}
	stats := f.RunStats()
	if stats == nil || stats.ParallelTime <= 0 || stats.MFLOPS <= 0 {
		t.Fatalf("virtual-path RunStats missing or empty: %+v", stats)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, x, b); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
	// Host path must not carry run stats.
	fh, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fh.RunStats() != nil {
		t.Fatal("host-path factorization has virtual RunStats")
	}
	// The deprecated wrapper is a thin alias for the folded options.
	fw, ws, err := FactorizeParallel(a, ParOptions{Options: DefaultOptions(), Procs: 4, Machine: T3E, Mapping: Map2D})
	if err != nil {
		t.Fatal(err)
	}
	if ws == nil || ws.ParallelTime != stats.ParallelTime || ws.SentBytes != stats.SentBytes {
		t.Fatalf("wrapper stats diverge: %+v vs %+v", ws, stats)
	}
	xw, err := fw.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != xw[i] {
			t.Fatalf("wrapper solution differs at %d", i)
		}
	}
}

func TestFactorizeParallelValidation(t *testing.T) {
	a := GenDense(20, 8)
	if _, _, err := FactorizeParallel(a, ParOptions{Procs: 2, Machine: "vax"}); err == nil {
		t.Fatal("expected unknown machine error")
	}
	if _, _, err := FactorizeParallel(a, ParOptions{Procs: 2, Mapping: "3d"}); err == nil {
		t.Fatal("expected unknown mapping error")
	}
	// Defaults: procs<=0 -> 1, empty machine/mapping -> T3E 2D.
	if _, stats, err := FactorizeParallel(a, ParOptions{}); err != nil || stats.ParallelTime <= 0 {
		t.Fatalf("defaulted run failed: %v", err)
	}
}

func TestMatrixMarketRoundTripFacade(t *testing.T) {
	a := GenCircuit(40, 3, GenOptions{Seed: 9})
	var buf stringsBuilder
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(buf.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if got.Nnz() != a.Nnz() || got.N != a.N {
		t.Fatal("round trip changed shape")
	}
}

func TestValidateRejectsDegenerateInputs(t *testing.T) {
	// Empty row.
	coo := NewCOO(3, 3)
	coo.Add(0, 0, 1)
	coo.Add(2, 2, 1)
	coo.Add(0, 1, 1)
	coo.Add(2, 1, 1)
	if _, err := Factorize(coo.ToCSR(), DefaultOptions()); err == nil {
		t.Fatal("expected empty-row rejection")
	}
	// Empty column.
	coo2 := NewCOO(3, 3)
	coo2.Add(0, 0, 1)
	coo2.Add(1, 0, 1)
	coo2.Add(2, 2, 1)
	if _, err := Factorize(coo2.ToCSR(), DefaultOptions()); err == nil {
		t.Fatal("expected empty-column rejection")
	}
	// Empty matrix.
	if _, err := Factorize(NewCOO(0, 0).ToCSR(), DefaultOptions()); err == nil {
		t.Fatal("expected empty-matrix rejection")
	}
	// Parallel path validates too.
	if _, _, err := FactorizeParallel(coo.ToCSR(), ParOptions{Procs: 2}); err == nil {
		t.Fatal("expected parallel-path rejection")
	}
}
