// Package sstar is a Go implementation of S*, the sparse LU factorization
// with partial pivoting for distributed memory machines of Fu, Jiao and Yang
// (SC'96 / IEEE TPDS 9(2), 1998).
//
// The library factors a square nonsymmetric sparse matrix A as PA = LU with
// row interchanges for numerical stability, using the S* design: a static
// symbolic factorization that bounds the fill of every possible pivot
// sequence, 2D L/U supernode partitioning with amalgamation so most work runs
// as dense matrix-matrix kernels, and a family of parallel execution
// strategies (1D compute-ahead, 1D graph-scheduled, 2D synchronous and the
// paper's flagship 2D asynchronous pipelined code) that run on a
// deterministic virtual-time message-passing machine calibrated to the
// paper's Cray T3D/T3E.
//
// Quick start:
//
//	a := sstar.NewCOO(n, n)
//	... a.Add(i, j, v) ...
//	f, err := sstar.Factorize(a.ToCSR(), sstar.DefaultOptions())
//	x, err := f.Solve(b)
package sstar

import (
	"fmt"
	"math"
	"time"

	"sstar/internal/core"
	"sstar/internal/machine"
	"sstar/internal/sparse"
	"sstar/internal/supernode"
)

// Matrix is a square sparse matrix in compressed sparse row form.
type Matrix = sparse.CSR

// COO is a sparse matrix under assembly in coordinate form.
type COO = sparse.COO

// NewCOO returns an empty n-by-m coordinate matrix for assembly.
func NewCOO(n, m int) *COO { return sparse.NewCOO(n, m) }

// Options configures the analyze and factorization phases.
type Options struct {
	// BlockSize is the maximum supernode panel width. 0 (the default)
	// selects structure-adaptive blocking: panel boundaries are chosen at
	// analyze time from the symbolic structure by a flop-vs-overhead cost
	// model (see DESIGN.md "Structure-adaptive blocking"). A positive
	// value pins a fixed global width instead — 25 is the paper's choice
	// on both T3D and T3E.
	BlockSize int
	// Amalgamate is the supernode amalgamation factor r. Under adaptive
	// blocking (BlockSize 0), 0 lets the cost model pick r per matrix and
	// a positive value pins it. Under fixed blocking, r is used as given
	// (the paper reports r in 4..6 as best; 0 disables amalgamation).
	Amalgamate int
	// SkipOrdering keeps the caller's row/column order instead of applying
	// the maximum transversal + minimum degree preprocessing.
	SkipOrdering bool
	// Ordering selects the fill-reducing column ordering: "" or "mmd-ata"
	// for the paper's minimum degree on AᵀA, "colmmd" for column minimum
	// degree computed directly on A.
	Ordering string
	// PivotThreshold in (0,1] enables threshold pivoting: the diagonal
	// candidate is kept whenever its magnitude reaches PivotThreshold
	// times the column maximum, reducing row interchanges (and so
	// communication) at a controlled stability cost. 0 or 1 selects
	// classical partial pivoting.
	PivotThreshold float64
	// HostWorkers sets the goroutine count of the numeric factor phase:
	// values above 1 execute the Factor/Update task DAG on that many
	// shared-memory workers, 0 or 1 keep the sequential driver. The same
	// count bounds the analyze phase's parallel stages (symbolic fill,
	// partition build). Factors and analyses are bit-identical either way,
	// so HostWorkers never changes results — only wall-clock — and it is
	// deliberately excluded from StructureKey.
	HostWorkers int
	// PatchMaxDiff bounds the incremental re-analysis of Analysis.Patch: the
	// symmetric difference between the cached and the new pattern, as a
	// fraction of the new pattern's nonzeros, above which Patch falls back
	// to a full analyze. 0 selects DefaultPatchMaxDiff; a negative value
	// disables the incremental path entirely. Purely a cost/latency knob —
	// the patched analysis is byte-identical to a pinned-ordering recompute
	// either way — so it is excluded from StructureKey.
	PatchMaxDiff float64
	// Observer, when non-nil, receives the pipeline's phase timings and
	// per-task trace events (see the Observer interface for the stability
	// contract). Purely observational: factors are bit-identical with or
	// without it. Local-only — it is ignored by the solver service's wire
	// protocol — and excluded from StructureKey.
	Observer Observer
	// Procs, when positive, routes Factorize through the virtual
	// distributed-memory machine: the matrix is factorized by the selected
	// parallel Mapping on Procs modeled processors of Machine, and the
	// modeled run statistics become available from Factorization.RunStats.
	// 0 (the default) keeps the host path (sequential, or the HostWorkers
	// task-DAG executor). Factors are bit-identical across every execution
	// path, so Procs/Machine/Mapping/TraceParallel never change results —
	// they are excluded from StructureKey and ignored (normalized to zero)
	// by the solver service.
	Procs int
	// Machine selects the virtual machine cost model for Procs > 0 runs:
	// "" or T3E for the Cray T3E constants, T3D for the T3D. Ignored on
	// the host path.
	Machine MachineName
	// Mapping selects the parallel execution strategy for Procs > 0 runs:
	// "" or Map2D for the paper's flagship asynchronous 2D code, Map1DCA,
	// Map1DRAPID, Map2DSync. Ignored on the host path.
	Mapping Mapping
	// TraceParallel records per-processor task spans on the virtual
	// timelines of a Procs > 0 run (Gantt-style observability; the modeled
	// times are unaffected). Ignored on the host path.
	TraceParallel bool
}

// DefaultPatchMaxDiff is the Analysis.Patch diff budget used when
// Options.PatchMaxDiff is 0: patterns differing by more than 5% of their
// entries pay a full analyze (the propagation cone typically stops being a
// win well before that).
const DefaultPatchMaxDiff = 0.05

// DefaultOptions selects structure-adaptive blocking: the analyze phase
// chooses panel boundaries and the amalgamation factor per matrix from the
// symbolic structure. PaperOptions pins the paper's fixed configuration.
func DefaultOptions() Options { return Options{} }

// PaperOptions mirrors the paper's experimental configuration: fixed panel
// width 25 and amalgamation factor 4 for every matrix.
func PaperOptions() Options { return Options{BlockSize: 25, Amalgamate: 4} }

func (o Options) analyzeOptions() core.AnalyzeOptions {
	return core.AnalyzeOptions{
		SkipOrdering: o.SkipOrdering,
		Ordering:     o.Ordering,
		Workers:      o.HostWorkers,
		Supernode:    supernode.Options{MaxBlock: o.BlockSize, Amalgamate: o.Amalgamate},
		Obs:          sinkFor(o.Observer),
	}
}

// analyze runs the analyze phase and applies the numeric options.
func (o Options) analyze(a *Matrix) *core.Symbolic {
	sym := core.Analyze(a, o.analyzeOptions())
	sym.PivotTol = o.PivotThreshold
	return sym
}

// Factorization holds the symbolic analysis and numeric factors of a matrix.
// The symbolic part (ordering, static structure, partition) can be reused
// across numeric refactorizations of matrices with the same pattern.
type Factorization struct {
	sym  *core.Symbolic
	fact *core.Factorization

	// hostWorkers is the factor-phase worker count the factorization was
	// created with; Refactorize reuses it so a parallel handle stays
	// parallel across numeric refreshes.
	hostWorkers int

	// observer, when non-nil, receives PhaseFactor/PhaseSolve timings and
	// per-task events from Refactorize and Solve. Carried over from
	// Options.Observer at factorize time; not serialized by Save/Load.
	observer Observer

	// Pattern fingerprint of the factorized matrix (structure hash and
	// nonzero count), kept so Refactorize can reject a matrix with a
	// different pattern instead of corrupting or panicking deep in the
	// numeric phase. Survives Save/Load.
	patHash uint64
	patNnz  int

	// Distribution of a parallel run, kept for SolveDistributed.
	parOwner []int
	parProcs int
	parModel machine.Model
	parGrid  [2]int // pr x pc when the run used the 2D codes

	// runStats holds the modeled execution statistics when the
	// factorization came from the virtual-machine path (Options.Procs > 0);
	// nil for host factorizations. Not serialized by Save/Load.
	runStats *RunStats
}

// RunStats returns the modeled execution statistics of the virtual-machine
// run that produced this factorization (Options.Procs > 0), or nil when the
// factors came from the host path. Not serialized by Save/Load.
func (f *Factorization) RunStats() *RunStats { return f.runStats }

// validate rejects matrices the pipeline cannot factor before any expensive
// work happens: non-square shapes, empty rows or columns (structural
// singularity), and diagonal-free inputs when reordering is disabled.
func validate(a *Matrix, o Options) error {
	if a.N != a.M {
		return fmt.Errorf("sstar: matrix must be square, got %dx%d", a.N, a.M)
	}
	if a.N == 0 {
		return fmt.Errorf("sstar: empty matrix")
	}
	colSeen := make([]bool, a.M)
	for i := 0; i < a.N; i++ {
		cols, _ := a.Row(i)
		if len(cols) == 0 {
			return fmt.Errorf("sstar: row %d is empty (structurally singular)", i)
		}
		for _, j := range cols {
			colSeen[j] = true
		}
	}
	for j, seen := range colSeen {
		if !seen {
			return fmt.Errorf("sstar: column %d is empty (structurally singular)", j)
		}
	}
	if o.SkipOrdering && !a.HasZeroFreeDiagonal() {
		return fmt.Errorf("sstar: SkipOrdering requires a structurally zero-free diagonal")
	}
	return nil
}

// Factorize analyzes and numerically factorizes a. This is the single
// factorize entrypoint: Options.HostWorkers selects the shared-memory
// task-DAG executor, and Options.Procs > 0 routes the run through the
// virtual distributed-memory machine (Machine/Mapping/TraceParallel apply;
// modeled statistics via Factorization.RunStats). The factors are
// bit-identical on every path. On the host path it is equivalent to Analyze
// followed by FactorizeWith; callers that factorize many matrices with one
// pattern should hold the Analysis and call FactorizeWith directly.
func Factorize(a *Matrix, o Options) (*Factorization, error) {
	if o.Procs > 0 {
		return factorizeVirtual(a, o)
	}
	an, err := Analyze(a, o)
	if err != nil {
		return nil, err
	}
	return an.FactorizeWith(a)
}

// Refactorize reuses the symbolic analysis to factorize a matrix with the
// same nonzero pattern but new values — the cheap path for time-stepping
// applications that repeatedly solve evolving systems. A matrix whose
// pattern differs from the originally factorized one is rejected with an
// error (the static structure only bounds fill for the analyzed pattern).
func (f *Factorization) Refactorize(a *Matrix) error {
	if a == nil {
		return fmt.Errorf("sstar: refactorize: nil matrix")
	}
	if a.N != f.sym.N || a.M != f.sym.N {
		return fmt.Errorf("sstar: refactorize size mismatch: %dx%d vs %d", a.N, a.M, f.sym.N)
	}
	if a.Nnz() != f.patNnz || patternHash(a) != f.patHash {
		return fmt.Errorf("sstar: refactorize pattern mismatch: matrix has %d nonzeros in a different structure than the factorized pattern (%d nonzeros)", a.Nnz(), f.patNnz)
	}
	fact, err := core.FactorizeHostObs(a, f.sym, f.hostWorkers, sinkFor(f.observer))
	if err != nil {
		return err
	}
	f.fact = fact
	return nil
}

// Solve solves A x = b using the computed factors.
func (f *Factorization) Solve(b []float64) ([]float64, error) {
	if len(b) != f.sym.N {
		return nil, fmt.Errorf("sstar: rhs length %d, want %d", len(b), f.sym.N)
	}
	if f.observer != nil {
		t0 := time.Now()
		x := f.fact.Solve(b)
		f.observer.Phase(PhaseSolve, time.Since(t0))
		return x, nil
	}
	return f.fact.Solve(b), nil
}

// FillIn returns the number of storage entries of the factors (including the
// explicit padding zeros of the block representation).
func (f *Factorization) FillIn() int64 { return f.fact.BM.StorageEntries() }

// StaticFill returns the entry count of the George-Ng static structure
// (before block padding).
func (f *Factorization) StaticFill() int { return f.sym.Static.NnzTotal() }

// Blocks returns the number of supernode panels of the 2D partition.
func (f *Factorization) Blocks() int { return f.sym.Partition.NB }

// Blocking reports the panel blocking the factorization was built with.
func (f *Factorization) Blocking() BlockingChoice { return blockingOf(f.sym) }

// BlockingChoice describes the supernode blocking an analysis settled on —
// either the fixed knobs the caller pinned or the outcome of the
// structure-adaptive cost model.
type BlockingChoice struct {
	// Adaptive reports whether the boundaries came from the cost model.
	Adaptive bool
	// MaxBlock is the widest panel of the partition under adaptive
	// blocking, or the configured maximum under fixed blocking.
	MaxBlock int
	// Amalgamate is the relaxed-amalgamation factor in effect.
	Amalgamate int
	// ModelCost is the cost model's flop-equivalent estimate for the
	// chosen plan; 0 under fixed blocking.
	ModelCost float64
	// Panels is the panel count of the partition.
	Panels int
}

func blockingOf(sym *core.Symbolic) BlockingChoice {
	c := sym.Partition.Choice
	return BlockingChoice{
		Adaptive:   c.Adaptive,
		MaxBlock:   c.MaxBlock,
		Amalgamate: c.Amalgamate,
		ModelCost:  c.ModelCost,
		Panels:     sym.Partition.NB,
	}
}

// MachineName selects a virtual machine cost model for parallel runs.
type MachineName string

// Supported machine models.
const (
	T3D MachineName = "t3d" // Cray T3D constants from the paper
	T3E MachineName = "t3e" // Cray T3E constants from the paper
)

// Mapping selects a parallel execution strategy.
type Mapping string

// Supported mappings.
const (
	// Map1DCA is the 1D column-block code with block-cyclic mapping and
	// compute-ahead scheduling (Fig. 10).
	Map1DCA Mapping = "1d-ca"
	// Map1DRAPID is the 1D code driven by critical-path graph scheduling
	// (the RAPID code).
	Map1DRAPID Mapping = "1d-rapid"
	// Map2D is the asynchronous 2D block-cyclic code (Figs. 12-15), the
	// paper's flagship.
	Map2D Mapping = "2d"
	// Map2DSync is the 2D code with a global barrier per elimination step
	// (the Table 7 strawman).
	Map2DSync Mapping = "2d-sync"
)

// ParOptions configures a parallel factorization on the virtual machine.
//
// Deprecated: the split is folded into Options — set Options.Procs,
// Options.Machine, Options.Mapping and Options.TraceParallel directly and
// call Factorize.
type ParOptions struct {
	Options
	Procs   int
	Machine MachineName
	Mapping Mapping
	// Trace records per-processor task spans on the virtual timelines
	// (Gantt-style observability; modeled times are unaffected).
	Trace bool
}

// RunStats reports the modeled execution of a parallel factorization.
type RunStats struct {
	// ParallelTime is the modeled (virtual) wall-clock of the run in
	// seconds on the selected machine.
	ParallelTime float64
	// MFLOPS is the achieved rate by the paper's formula: the operation
	// count of a dynamic-fill factorization divided by the parallel time.
	MFLOPS float64
	// SentBytes and SentMessages total the communication volume.
	SentBytes    int64
	SentMessages int64
	// LoadBalance is work_total/(P*work_max) over update work.
	LoadBalance float64
	// Utilization is each processor's charged compute time as a fraction
	// of the parallel time (waits excluded).
	Utilization []float64
}

func model(name MachineName) (machine.Model, error) {
	switch name {
	case T3D:
		return machine.T3D(), nil
	case T3E, "":
		return machine.T3E(), nil
	default:
		return machine.Model{}, fmt.Errorf("sstar: unknown machine %q", name)
	}
}

// FactorizeParallel analyzes and factorizes a on the virtual distributed
// machine, returning the factors (usable with Solve) plus run statistics.
//
// Deprecated: there is one factorize entrypoint — set Options.Procs (plus
// Machine/Mapping/TraceParallel) and call Factorize; the modeled statistics
// are available from Factorization.RunStats.
func FactorizeParallel(a *Matrix, o ParOptions) (*Factorization, *RunStats, error) {
	opts := o.Options
	opts.Procs = o.Procs
	if opts.Procs <= 0 {
		opts.Procs = 1
	}
	opts.Machine = o.Machine
	opts.Mapping = o.Mapping
	opts.TraceParallel = o.Trace
	f, err := Factorize(a, opts)
	if err != nil {
		return nil, nil, err
	}
	return f, f.RunStats(), nil
}

// factorizeVirtual is the Options.Procs > 0 arm of Factorize: the full
// virtual-machine run, with the modeled statistics attached to the returned
// Factorization.
func factorizeVirtual(a *Matrix, o Options) (*Factorization, error) {
	m, err := model(o.Machine)
	if err != nil {
		return nil, err
	}
	if err := validate(a, o); err != nil {
		return nil, err
	}
	sym := o.analyze(a)
	// Derate the kernel rates for the achieved average panel width (the
	// paper's DGEMM/DGEMV numbers are calibrated at block size 25).
	m = m.WithBlockSize(sym.Partition.FlopWeightedWidth())
	var runOpts []core.RunOption
	if o.TraceParallel {
		runOpts = append(runOpts, core.WithTracing())
	}
	var res *core.ParResult
	var owner []int
	var grid [2]int
	switch o.Mapping {
	case Map1DCA:
		s := core.ScheduleCA(sym, o.Procs)
		owner = s.Owner
		res, err = core.Factorize1D(a, sym, m, s, runOpts...)
	case Map1DRAPID:
		s := core.ScheduleRAPID(sym, o.Procs, m)
		owner = s.Owner
		res, err = core.Factorize1D(a, sym, m, s, runOpts...)
	case Map2D, "":
		pr, pc := core.GridShape(o.Procs)
		grid = [2]int{pr, pc}
		res, err = core.Factorize2D(a, sym, m, pr, pc, true, runOpts...)
	case Map2DSync:
		pr, pc := core.GridShape(o.Procs)
		grid = [2]int{pr, pc}
		res, err = core.Factorize2D(a, sym, m, pr, pc, false, runOpts...)
	default:
		return nil, fmt.Errorf("sstar: unknown mapping %q", o.Mapping)
	}
	if err != nil {
		return nil, err
	}

	// MFLOPS by the paper's convention: dynamic-fill operation count over
	// parallel time.
	gp, gerr := core.GPFactorize(sym.PermutedMatrix(a), 1.0)
	mf := 0.0
	if gerr == nil && res.ParallelTime > 0 {
		mf = float64(gp.Flops) / res.ParallelTime / 1e6
	}
	stats := &RunStats{
		ParallelTime: res.ParallelTime,
		MFLOPS:       mf,
		SentBytes:    res.SentBytes,
		SentMessages: res.SentMessages,
		LoadBalance:  res.LoadBalance,
	}
	if res.ParallelTime > 0 {
		stats.Utilization = make([]float64, len(res.BusySeconds))
		for i, busy := range res.BusySeconds {
			stats.Utilization[i] = busy / res.ParallelTime
		}
	}
	return &Factorization{
		sym: sym, fact: res.Fact,
		patHash: patternHash(a), patNnz: a.Nnz(),
		parOwner: owner, parProcs: o.Procs, parModel: m, parGrid: grid,
		runStats: stats,
	}, nil
}

// Residual returns ||Ax-b||_inf / (||A||_inf ||x||_inf + ||b||_inf), the
// scaled backward-error measure used throughout the test suite.
func Residual(a *Matrix, x, b []float64) float64 {
	r := make([]float64, a.N)
	a.MulVec(x, r)
	num, xn, bn := 0.0, 0.0, 0.0
	for i := range r {
		num = max(num, math.Abs(r[i]-b[i]))
		xn = max(xn, math.Abs(x[i]))
		bn = max(bn, math.Abs(b[i]))
	}
	den := a.NormInf()*xn + bn
	if den == 0 {
		return 0
	}
	return num / den
}
