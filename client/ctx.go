package client

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"sstar"
	"sstar/internal/server"
	"sstar/internal/wire"
)

// clientMetrics is the client's own counter block (see Metrics).
type clientMetrics struct {
	requests  atomic.Int64
	errors    atomic.Int64
	canceled  atomic.Int64
	dials     atomic.Int64
	reused    atomic.Int64
	retries   atomic.Int64
	redials   atomic.Int64
	sheds     atomic.Int64
	redirects atomic.Int64
}

// Metrics is a snapshot of the client's local counters — the client-side
// complement of the server's RequestStats/ServerStats: how many round trips
// this process issued, how they ended, and how well the connection pool is
// reusing connections (Dials much larger than expected means the pool is
// churning: connections poisoned by errors or cancellations, or maxIdle too
// small for the concurrency level). Retries, Redials, and Sheds are the
// resilience counters: how often the retry policy fired, how often a stale
// pooled connection was transparently replaced, and how often the server
// refused work under load.
type Metrics struct {
	Requests int64 // logical calls issued (retries of one call count once)
	Errors   int64 // calls that ultimately failed (transport or in-band server error)
	Canceled int64 // calls ended by context cancellation or deadline
	Dials    int64 // fresh connections dialed (including the eager Dial handshake)
	Reused   int64 // attempts served by a pooled connection
	Retries  int64 // retry attempts made by the retry policy
	Redials  int64 // stale pooled connections replaced mid-call by a fresh dial
	Sheds    int64 // responses answered sstar.ErrOverloaded (request refused, not executed)
	// Redirects counts cluster redirect answers (CodeRedirect/CodeNotOwner)
	// the client followed to a new target mid-call. Each one is a
	// retry-with-new-target, not a failure: the refusing shard never
	// executed the request and named the shard that will.
	Redirects int64
}

// Metrics returns a snapshot of the client's counters. Safe to call
// concurrently with requests.
func (c *Client) Metrics() Metrics {
	return Metrics{
		Requests:  c.met.requests.Load(),
		Errors:    c.met.errors.Load(),
		Canceled:  c.met.canceled.Load(),
		Dials:     c.met.dials.Load(),
		Reused:    c.met.reused.Load(),
		Retries:   c.met.retries.Load(),
		Redials:   c.met.redials.Load(),
		Sheds:     c.met.sheds.Load(),
		Redirects: c.met.redirects.Load(),
	}
}

// maxRedirectFollows bounds how many cluster redirects one logical call
// follows, so a misconfigured fleet (shards pointing at each other) fails
// typed instead of looping. The budget refills when a redirect carries a new
// membership epoch — the fleet changed under the call, so fresh placement
// answers are new information, not evidence of a loop — bounded absolutely
// by maxRedirectChain.
const maxRedirectFollows = 8

// maxRedirectChain is the absolute ceiling on redirects followed by one
// logical call, across every epoch-triggered budget refill. A fleet churning
// faster than a call can chase placement still terminates typed.
const maxRedirectChain = 64

// RedirectLoopError reports a call whose cluster redirects never reached a
// shard willing to execute it: every hop named another owner until the hop
// budget ran out. errors.Is matches it against sstar.ErrRedirectLoop; Hops
// is the address chain the call walked, last entry the target the next hop
// would have visited — the cycle is visible in the repetition.
type RedirectLoopError struct {
	Op   string
	Hops []string
}

// Error names the op and the full hop chain.
func (e *RedirectLoopError) Error() string {
	return fmt.Sprintf("%v: %s gave up after %d redirects: %s",
		sstar.ErrRedirectLoop, e.Op, len(e.Hops)-1, strings.Join(e.Hops, " -> "))
}

// Is matches the sstar.ErrRedirectLoop sentinel.
func (e *RedirectLoopError) Is(target error) bool { return target == sstar.ErrRedirectLoop }

// roundTrip runs one logical call against the primary address.
func (c *Client) roundTrip(ctx context.Context, req *server.Request) (*server.Response, error) {
	resp, _, err := c.roundTripAt(ctx, req, "")
	return resp, err
}

// roundTripAt runs one logical call: attempt at the preferred address (the
// primary when empty), then — under the configured RetryPolicy — retry with
// jittered backoff for exactly the failures that are safe to repeat (see
// RetryPolicy). The context's deadline and cancellation propagate into every
// attempt; the retry loop additionally respects the policy's total time
// budget.
//
// Cluster redirects (CodeRedirect/CodeNotOwner naming the owning shard) are
// followed inline, bounded by maxRedirectFollows, independent of the retry
// policy: the refusing shard guarantees it never executed the request, so
// re-aiming is always safe — it is a retry-with-new-target, not a failure.
// Each policy retry restarts from the primary, so a call preferring a shard
// that has since died falls back to the router (or a redirect) instead of
// hammering the corpse. answeredAt is the address that finally answered.
func (c *Client) roundTripAt(ctx context.Context, req *server.Request, preferred string) (resp *server.Response, answeredAt string, err error) {
	if c.tenant != "" {
		req.Tenant = c.tenant
	}
	c.met.requests.Add(1)
	start := time.Now()
	target := preferred
	if target == "" {
		target = c.addr
	}
	for attempt := 0; ; attempt++ {
		resp, err = c.doRoundTrip(ctx, req, target)
		var hops []string
		budget := maxRedirectFollows
		var epoch uint64
		for err != nil && len(hops) < maxRedirectChain {
			var re *RemoteError
			if !errors.As(err, &re) || (re.Code != server.CodeRedirect && re.Code != server.CodeNotOwner) ||
				resp == nil || resp.Addr == "" || resp.Addr == target {
				break
			}
			if resp.Epoch > epoch {
				if epoch != 0 {
					// The fleet's membership changed mid-call: placement
					// answers computed from the new ring are not loop
					// evidence — start the hop budget over.
					budget = maxRedirectFollows
				}
				epoch = resp.Epoch
			}
			if budget == 0 {
				err = &RedirectLoopError{Op: req.Op.String(), Hops: append(hops, target, resp.Addr)}
				break
			}
			budget--
			c.met.redirects.Add(1)
			hops = append(hops, target)
			target = resp.Addr
			resp, err = c.doRoundTrip(ctx, req, target)
		}
		if err == nil {
			return resp, target, nil
		}
		if errors.Is(err, sstar.ErrOverloaded) {
			c.met.sheds.Add(1)
		}
		if attempt >= c.retry.MaxRetries || !retryable(req.Op, err) {
			break
		}
		d := c.retry.backoff(attempt)
		if c.retry.Budget > 0 && time.Since(start)+d > c.retry.Budget {
			break
		}
		if err := sleepCtx(ctx, d); err != nil {
			break
		}
		c.met.retries.Add(1)
		target = c.addr
	}
	c.met.errors.Add(1)
	if ctx.Err() != nil {
		c.met.canceled.Add(1)
	}
	return resp, target, err
}

// doRoundTrip performs one attempt against addr: send the request, read the
// response. A transport failure on a *pooled* connection — the classic
// stale-connection trap after a server restart — is healed transparently for
// idempotent operations: the dead connection is dropped and the attempt
// repeated once on a fresh dial. Non-idempotent operations (factorize, free)
// surface the error instead, because the stale connection's failure mode is
// ambiguous about whether the server executed the request.
func (c *Client) doRoundTrip(ctx context.Context, req *server.Request, addr string) (*server.Response, error) {
	resp, err, failedPooled := c.attempt(ctx, req, addr)
	if failedPooled && req.Op.Idempotent() && ctx.Err() == nil {
		c.met.redials.Add(1)
		resp, err, _ = c.attempt(ctx, req, addr)
	}
	return resp, err
}

// attempt is one wire exchange. failedPooled reports a transport failure on
// a connection that came from the idle pool (never set for in-band server
// errors, context failures, or failures on freshly dialed connections).
func (c *Client) attempt(ctx context.Context, req *server.Request, addr string) (_ *server.Response, err error, failedPooled bool) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("client: %w", err), false
	}
	conn, reused, err := c.get(addr)
	if err != nil {
		return nil, err, false
	}
	// Deadline header: the server sheds the request instead of running it
	// when its queue wait alone would exhaust the remaining budget.
	if d, ok := ctx.Deadline(); ok {
		req.TimeoutNs = max(time.Until(d).Nanoseconds(), 1)
	} else {
		req.TimeoutNs = 0
	}
	// Deadline propagation: the context deadline bounds both frames, and an
	// asynchronous cancel moves the deadline into the past so a blocked
	// Read/Write returns immediately with a timeout.
	var stop func() bool
	if ctx.Done() != nil {
		if d, ok := ctx.Deadline(); ok {
			conn.SetDeadline(d)
		}
		stop = context.AfterFunc(ctx, func() {
			conn.SetDeadline(time.Unix(1, 0))
		})
	}
	// ctxErr prefers the context's error over the transport error it caused.
	ctxErr := func(op string, err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("client: %s: %w", op, cerr)
		}
		return fmt.Errorf("client: %s: %w", op, err)
	}
	if err := wire.WriteGob(conn, server.FrameRequest, req); err != nil {
		if stop != nil {
			stop()
		}
		conn.Close()
		return nil, ctxErr("send", err), reused && ctx.Err() == nil
	}
	resp := new(server.Response)
	if err := wire.ReadGob(conn, server.FrameResponse, c.maxFrame, resp); err != nil {
		if stop != nil {
			stop()
		}
		conn.Close()
		return nil, ctxErr("receive", err), reused && ctx.Err() == nil
	}
	if stop != nil {
		if !stop() {
			// The cancel fired after the response landed: the result is
			// valid, but the AfterFunc may be poisoning the deadline
			// concurrently, so the connection cannot be trusted to the pool.
			conn.Close()
		} else {
			conn.SetDeadline(time.Time{})
			c.put(addr, conn)
		}
	} else {
		c.put(addr, conn)
	}
	return resp, resp.Error(), false
}
