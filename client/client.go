// Package client is the Go client of the sstar solver service (cmd/sstar-serve):
// a thin, connection-reusing wrapper around the service's length-prefixed
// binary protocol on TCP or Unix sockets.
//
// A Client is safe for concurrent use; independent requests run over
// independent pooled connections. Every method takes a context first — its
// deadline and cancellation propagate into the framed round trip, and the
// deadline also travels to the server as the request's time budget, so a
// request whose queue wait would blow the deadline is shed with
// sstar.ErrOverloaded instead of executing late. The typical flow mirrors
// the library API:
//
//	c, _ := client.Dial("tcp", "127.0.0.1:7071")
//	h, st, _ := c.Factorize(ctx, a, sstar.DefaultOptions())   // st.CacheHit when the server knew the pattern
//	x, _, _ := h.Solve(ctx, b)
//	_, _ = h.Refactorize(ctx, newValues)                      // values-only fast path, same pattern
//	h.Free(ctx)
//	c.Close()
//
// The XCtx spellings (FactorizeCtx, SolveCtx, ...) from the era when the
// plain names lacked a context remain as deprecated aliases of the canonical
// methods; see deprecated.go. Client.Metrics reports the client's own
// request/error/dial counters.
//
// Multi-tenant servers attribute work to tenants for fair-share scheduling
// (see DESIGN.md, "Coalescing & QoS"). Dial with WithTenant to stamp every
// request, or derive a per-tenant view with ForTenant — the view shares the
// connection pool and counters with its parent:
//
//	c, _ := client.Dial("tcp", addr, client.WithTenant("prod"))
//	batch := c.ForTenant("batch")   // same pool, different attribution
//
// Failures are typed: a server-side error arrives as a *RemoteError whose
// class matches the root package's sentinels through errors.Is
// (sstar.ErrSingular, sstar.ErrBadHandle, sstar.ErrOverloaded,
// sstar.ErrHandleEvicted, sstar.ErrInternal). WithRetry adds
// jittered-backoff retries for exactly the failures that are safe to repeat;
// independent of the policy, a pooled connection that turns out to be dead is
// evicted and the operation transparently redialed once (idempotent ops
// only).
package client

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"sstar"
	"sstar/internal/server"
	"sstar/internal/wire"
)

// RequestStats is the server's per-request cost split (queue wait,
// analyze/factor/solve nanoseconds, analysis-cache hit flag, and — for
// coalesced solves — the batch width the request rode in).
type RequestStats = server.RequestStats

// ServerStats is a snapshot of the server's counters.
type ServerStats = server.ServerStats

// Option configures a Client.
type Option func(*Client)

// WithMaxIdle caps the pooled idle connections (default 4).
func WithMaxIdle(n int) Option { return func(c *Client) { c.maxIdle = n } }

// WithDialTimeout bounds each dial (default 5s).
func WithDialTimeout(d time.Duration) Option { return func(c *Client) { c.dialTimeout = d } }

// WithMaxFrame caps an incoming response frame (default wire.DefaultMaxPayload).
func WithMaxFrame(n int) Option { return func(c *Client) { c.maxFrame = n } }

// WithRetry makes the client retry failed round trips under p — see
// RetryPolicy for exactly what is safe to retry and why. Without this option
// retries are disabled and every failure surfaces immediately.
func WithRetry(p RetryPolicy) Option { return func(c *Client) { c.retry = p.withDefaults() } }

// WithTenant stamps every request from this client with the tenant name, the
// unit of the server's fair-share scheduling and per-tenant metrics. An
// empty tenant (the default) is admitted under the server's default tenant.
// Old servers ignore the field.
func WithTenant(tenant string) Option { return func(c *Client) { c.tenant = tenant } }

// Client is a connection-pooling client of one solver service — a single
// server, a cluster shard, or a cluster router; the protocol is identical.
// Connections are pooled per address because a cluster answer can redirect
// the client to the shard that owns the work (CodeRedirect/CodeNotOwner):
// the client follows the redirect transparently, dialing and pooling the new
// address alongside the primary (see Metrics.Redirects).
type Client struct {
	network, addr string
	maxIdle       int
	maxFrame      int
	dialTimeout   time.Duration
	retry         RetryPolicy
	tenant        string

	// shared is the pool and counter state every tenant-derived view of this
	// client (ForTenant) has in common; the view copies the config fields
	// above and aliases this.
	*shared
}

// shared is the state common to a Client and all its ForTenant views: the
// per-address connection pool and the client metrics.
type shared struct {
	mu     sync.Mutex
	idle   map[string][]net.Conn // per target address
	closed bool

	met clientMetrics
}

// Dial returns a client for the service at addr ("tcp", "host:port" or
// "unix", "/path/to.sock"). The first connection is established and
// handshaked eagerly so a wrong address or incompatible server fails here,
// not on the first request.
func Dial(network, addr string, opts ...Option) (*Client, error) {
	c := &Client{
		network:     network,
		addr:        addr,
		maxIdle:     4,
		maxFrame:    wire.DefaultMaxPayload,
		dialTimeout: 5 * time.Second,
		shared:      &shared{idle: make(map[string][]net.Conn)},
	}
	for _, o := range opts {
		o(c)
	}
	conn, err := c.dial(addr)
	if err != nil {
		return nil, err
	}
	c.put(addr, conn)
	return c, nil
}

// ForTenant returns a view of the client that stamps tenant on every request
// it issues. The view shares the connection pool, the metrics counters, and
// the retry policy with its parent; only the attribution differs. Closing
// either closes the shared pool. Handles keep the tenant of the view that
// factorized them.
func (c *Client) ForTenant(tenant string) *Client {
	view := *c
	view.tenant = tenant
	return &view
}

// dial opens and handshakes a fresh connection to addr (the primary, or a
// shard a cluster redirect pointed at).
func (c *Client) dial(addr string) (net.Conn, error) {
	c.met.dials.Add(1)
	conn, err := net.DialTimeout(c.network, addr, c.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s %s: %w", c.network, addr, err)
	}
	if err := wire.WriteGob(conn, server.FrameHello, server.Hello{Magic: server.ProtoMagic, Version: server.ProtoVersion}); err != nil {
		conn.Close()
		return nil, err
	}
	var hello server.Hello
	if err := wire.ReadGob(conn, server.FrameHello, 1<<16, &hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	if hello.Magic != server.ProtoMagic || hello.Version != server.ProtoVersion {
		conn.Close()
		return nil, fmt.Errorf("client: server speaks %q v%d, want %q v%d", hello.Magic, hello.Version, server.ProtoMagic, server.ProtoVersion)
	}
	return conn, nil
}

// get pops an idle connection to addr or dials a new one. reused reports
// which: a pooled connection may have died since it was pooled (a server
// restart, an idle timeout on a middlebox), so failures on it are eligible
// for one transparent redial (see doRoundTrip).
func (c *Client) get(addr string) (conn net.Conn, reused bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, fmt.Errorf("client: closed")
	}
	if conns := c.idle[addr]; len(conns) > 0 {
		conn := conns[len(conns)-1]
		c.idle[addr] = conns[:len(conns)-1]
		c.mu.Unlock()
		c.met.reused.Add(1)
		return conn, true, nil
	}
	c.mu.Unlock()
	conn, err = c.dial(addr)
	return conn, false, err
}

// put returns a healthy connection to addr's pool (or closes it beyond
// maxIdle per address).
func (c *Client) put(addr string, conn net.Conn) {
	c.mu.Lock()
	if !c.closed && len(c.idle[addr]) < c.maxIdle {
		c.idle[addr] = append(c.idle[addr], conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.Close()
}

// Close releases every pooled connection, including those of ForTenant views
// (the pool is shared). In-flight requests on checked-out connections
// finish; their connections are then closed on return.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conns := range idle {
		for _, conn := range conns {
			conn.Close()
		}
	}
	return nil
}

// Ping checks liveness end to end.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, &server.Request{Op: server.OpPing})
	return err
}

// Stats fetches a snapshot of the server's counters.
func (c *Client) Stats(ctx context.Context) (ServerStats, error) {
	resp, err := c.roundTrip(ctx, &server.Request{Op: server.OpStats})
	if err != nil {
		return ServerStats{}, err
	}
	return resp.Server, nil
}

// Factorize submits a for analysis + factorization and returns a handle to
// the server-side factors; the context's deadline covers the matrix
// transfer, the server-side queue wait and factorization, and the response.
// The analysis is served from the server's structure-keyed cache when a
// matrix with this pattern (and options) has been seen before —
// stats.CacheHit reports which way it went. Options.Observer is a
// local-process hook and is stripped before the options go on the wire (the
// server runs its own instrumentation).
func (c *Client) Factorize(ctx context.Context, a *sstar.Matrix, o sstar.Options) (*Handle, RequestStats, error) {
	o.Observer = nil
	resp, err := c.roundTrip(ctx, &server.Request{Op: server.OpFactorize, Matrix: a, Opts: o})
	if err != nil {
		return nil, RequestStats{}, err
	}
	// resp.Addr/resp.Key are only stamped by cluster shards; against a
	// single server they stay zero and the handle behaves as before.
	return &Handle{c: c, id: resp.Handle, n: resp.N, nnz: resp.Nnz, key: resp.Key, addr: resp.Addr}, resp.Stats, nil
}

// Handle is a live factorization on the server.
type Handle struct {
	c   *Client
	id  uint64
	n   int
	nnz int
	// key is the structure key the server stamped on the factorize
	// response. Handle operations carry it as a placement hint so a cluster
	// shard that doesn't hold the handle can answer with the owner's
	// address (CodeNotOwner + Addr) instead of a bare bad-handle.
	key uint64
	// addr is the shard that executed the factorize (empty outside a
	// cluster): handle operations start there instead of rediscovering the
	// owner through a redirect on every call.
	addr string
}

// ForTenant returns a view of the handle whose operations are attributed to
// tenant — the per-call counterpart of Client.ForTenant. The view targets the
// same server-side factors, so solves issued through different tenant views
// of one handle still coalesce into shared batches; only the accounting and
// fair-share scheduling differ.
func (h *Handle) ForTenant(tenant string) *Handle {
	view := *h
	view.c = h.c.ForTenant(tenant)
	return &view
}

// ID returns the server-side handle id.
func (h *Handle) ID() uint64 { return h.id }

// N returns the matrix order.
func (h *Handle) N() int { return h.n }

// Nnz returns the pattern's nonzero count — the required length of a
// Refactorize values slice.
func (h *Handle) Nnz() int { return h.nnz }

// Key returns the structure key the server assigned to the handle's pattern
// (0 when the server predates cluster support).
func (h *Handle) Key() uint64 { return h.key }

// Solve solves A x = b with the handle's current factors. Concurrent Solve
// calls against the same handle may be coalesced server-side into one
// batched solve — bitwise identical to solving alone; stats.BatchWidth
// reports the width the request rode in.
func (h *Handle) Solve(ctx context.Context, b []float64) ([]float64, RequestStats, error) {
	resp, _, err := h.c.roundTripAt(ctx, &server.Request{Op: server.OpSolve, Handle: h.id, Key: h.key, B: b}, h.addr)
	if err != nil {
		return nil, RequestStats{}, err
	}
	return resp.X, resp.Stats, nil
}

// SolveMany solves NRHS right-hand sides stored column-major in b
// (len(b) = N*nrhs) through the server's blocked BLAS-3 panel path; the
// solutions come back in the same layout. Against a cluster router, wide
// panels are scattered across the shards holding replicas of the factors.
func (h *Handle) SolveMany(ctx context.Context, b []float64, nrhs int) ([]float64, RequestStats, error) {
	resp, _, err := h.c.roundTripAt(ctx, &server.Request{Op: server.OpSolveMany, Handle: h.id, Key: h.key, B: b, NRHS: nrhs}, h.addr)
	if err != nil {
		return nil, RequestStats{}, err
	}
	return resp.X, resp.Stats, nil
}

// Refactorize replaces the handle's factors with a factorization of the same
// pattern carrying new values — the fast path: no structure is re-sent, no
// analysis is re-run. values must list the new entries in the same CSR order
// as the originally submitted matrix (length Nnz).
func (h *Handle) Refactorize(ctx context.Context, values []float64) (RequestStats, error) {
	resp, _, err := h.c.roundTripAt(ctx, &server.Request{Op: server.OpRefactorize, Handle: h.id, Key: h.key, Values: values}, h.addr)
	if err != nil {
		return RequestStats{}, err
	}
	return resp.Stats, nil
}

// RefactorizeMatrix is the full-matrix form of Refactorize for callers that
// hold a CSR anyway; the server rejects a pattern differing from the
// handle's.
func (h *Handle) RefactorizeMatrix(ctx context.Context, a *sstar.Matrix) (RequestStats, error) {
	resp, _, err := h.c.roundTripAt(ctx, &server.Request{Op: server.OpRefactorize, Handle: h.id, Key: h.key, Matrix: a}, h.addr)
	if err != nil {
		return RequestStats{}, err
	}
	return resp.Stats, nil
}

// Free releases the server-side factorization.
func (h *Handle) Free(ctx context.Context) error {
	_, _, err := h.c.roundTripAt(ctx, &server.Request{Op: server.OpFree, Handle: h.id, Key: h.key}, h.addr)
	return err
}
