package client

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"sstar"
	"sstar/internal/server"
)

// RemoteError is a failed response from the service: the server's message
// plus its typed failure class. errors.Is matches it against the root
// package's sentinels (sstar.ErrSingular, sstar.ErrBadHandle,
// sstar.ErrOverloaded, sstar.ErrHandleEvicted, sstar.ErrInternal), so
// callers branch on failure classes identically for local and remote solves.
type RemoteError = server.RemoteError

// Code classifies a RemoteError (see internal/server.Code).
type Code = server.Code

// RetryPolicy makes the client retry failed round trips with exponentially
// growing, jittered backoff. The zero value disables retries (every failure
// surfaces immediately, the pre-existing behavior).
//
// What is retried — both conditions consult what the failure implies about
// server state:
//
//   - A typed shed (sstar.ErrOverloaded) is retried for every operation: the
//     server guarantees a shed request never executed.
//   - A transport failure (reset, torn frame, corrupt response) is retried
//     only for idempotent operations (ping, stats, solve, values-only
//     refactorize): the request may or may not have executed, and only
//     idempotent ops are safe to repeat under that ambiguity. Factorize
//     (allocates a handle per execution) and free are never retried on
//     transport errors.
//   - Typed non-retryable failures (singular matrix, bad handle, evicted
//     handle, internal error) and context cancellation surface immediately.
//   - Cluster redirects (CodeRedirect/CodeNotOwner) never reach the policy:
//     they are followed inline to the shard the response names — a
//     retry-with-new-target, counted in Metrics.Redirects — before retry
//     classification happens, whether or not retries are enabled.
//
// Every retry dials afresh if needed — pooled connections poisoned by the
// failed attempt are never reused.
type RetryPolicy struct {
	// MaxRetries caps the retry attempts after the first try (0 disables
	// retrying).
	MaxRetries int
	// BaseBackoff is the backoff before the first retry (default 10ms when
	// retries are enabled). Attempt k waits ~BaseBackoff<<k, half-to-full
	// jittered.
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff (default 1s).
	MaxBackoff time.Duration
	// Budget caps the total time spent on one logical call across all
	// attempts and backoffs (0 = unlimited; the context deadline still
	// applies either way).
	Budget time.Duration
}

// DefaultRetryPolicy is a sensible production policy: up to 4 retries,
// 10ms..1s jittered exponential backoff, 15s total budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 4, BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Second, Budget: 15 * time.Second}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries > 0 {
		if p.BaseBackoff <= 0 {
			p.BaseBackoff = 10 * time.Millisecond
		}
		if p.MaxBackoff <= 0 {
			p.MaxBackoff = time.Second
		}
	}
	return p
}

// backoff returns the jittered wait before retry attempt (0-based):
// exponential growth capped at MaxBackoff, then uniformly drawn from
// [d/2, d] so synchronized clients spread out.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 0; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	d = min(d, p.MaxBackoff)
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// retryable reports whether err may be retried for op under the ambiguity
// rules above.
func retryable(op server.Op, err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		// In-band server answer: the request reached the server and was
		// answered. Only a shed (never executed) is worth repeating.
		// Redirect codes were already followed inline by roundTripAt; one
		// surviving to this point carried no usable target, and repeating
		// it at the same address would only be refused again.
		return re.Code == server.CodeOverloaded
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, sstar.ErrRedirectLoop) {
		// The fleet disagrees about placement; restarting the chase from the
		// primary would walk the same loop.
		return false
	}
	// Transport failure: execution state unknown.
	return op.Idempotent()
}

// sleepCtx sleeps d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
