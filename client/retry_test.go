package client

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"sstar"
	"sstar/internal/server"
	"sstar/internal/wire"
)

// stubServer speaks the service protocol with scripted answers: handler is
// called with the 0-based connection and request index and returns the
// response, plus whether to drop the connection afterwards (or instead of
// answering, when resp is nil). It exists to script failure sequences a real
// server produces only under load or restarts.
type stubServer struct {
	l     net.Listener
	conns atomic.Int64
}

func newStubServer(t *testing.T, handler func(conn, req int, r *server.Request) (resp *server.Response, drop bool)) *stubServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	st := &stubServer{l: l}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			connID := int(st.conns.Add(1)) - 1
			go func() {
				defer c.Close()
				var hello server.Hello
				if err := wire.ReadGob(c, server.FrameHello, 1<<16, &hello); err != nil {
					return
				}
				if err := wire.WriteGob(c, server.FrameHello, server.Hello{Magic: server.ProtoMagic, Version: server.ProtoVersion}); err != nil {
					return
				}
				for reqID := 0; ; reqID++ {
					req := new(server.Request)
					if err := wire.ReadGob(c, server.FrameRequest, wire.DefaultMaxPayload, req); err != nil {
						return
					}
					resp, drop := handler(connID, reqID, req)
					if resp != nil {
						if err := wire.WriteGob(c, server.FrameResponse, resp); err != nil {
							return
						}
					}
					if drop {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { l.Close() })
	return st
}

func (s *stubServer) addr() string { return s.l.Addr().String() }

func shedResponse() *server.Response {
	return &server.Response{Err: "stub: overloaded", Code: server.CodeOverloaded}
}

// TestRetryOnShedThenSuccess: a typed shed is retried (for any op) and the
// retry/shed counters record the episode.
func TestRetryOnShedThenSuccess(t *testing.T) {
	var answered atomic.Int64
	st := newStubServer(t, func(conn, req int, r *server.Request) (*server.Response, bool) {
		if answered.Add(1) <= 2 {
			return shedResponse(), false
		}
		return &server.Response{}, false
	})
	c, err := Dial("tcp", st.addr(), WithRetry(RetryPolicy{MaxRetries: 4, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping through two sheds: %v", err)
	}
	m := c.Metrics()
	if m.Retries != 2 || m.Sheds != 2 || m.Errors != 0 {
		t.Fatalf("metrics %+v, want 2 retries, 2 sheds, 0 errors", m)
	}
}

// TestNoRetryOnTypedFailure: a singular matrix is a fact about the input, not
// the infrastructure — retrying cannot help and must not happen.
func TestNoRetryOnTypedFailure(t *testing.T) {
	var answered atomic.Int64
	st := newStubServer(t, func(conn, req int, r *server.Request) (*server.Response, bool) {
		answered.Add(1)
		return &server.Response{Err: "stub: matrix is numerically singular", Code: server.CodeSingular}, false
	})
	c, err := Dial("tcp", st.addr(), WithRetry(RetryPolicy{MaxRetries: 5, BaseBackoff: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a := sstar.GenGrid2D(3, 3, false, sstar.GenOptions{Seed: 1})
	_, _, ferr := c.Factorize(context.Background(), a, sstar.DefaultOptions())
	if !errors.Is(ferr, sstar.ErrSingular) {
		t.Fatalf("errors.Is(ErrSingular) false for %v", ferr)
	}
	var re *RemoteError
	if !errors.As(ferr, &re) || re.Code != server.CodeSingular {
		t.Fatalf("remote error not surfaced typed: %v", ferr)
	}
	if n := answered.Load(); n != 1 {
		t.Fatalf("server answered %d times: a typed singular error was retried", n)
	}
	if m := c.Metrics(); m.Retries != 0 || m.Errors != 1 {
		t.Fatalf("metrics %+v, want 0 retries, 1 error", m)
	}
}

// TestStaleConnRedialIdempotent: a pooled connection that died behind the
// client's back (server restart, middlebox timeout) is replaced by one
// transparent redial for an idempotent op — no error reaches the caller, and
// no retry policy is needed for it.
func TestStaleConnRedialIdempotent(t *testing.T) {
	st := newStubServer(t, func(conn, req int, r *server.Request) (*server.Response, bool) {
		// Connection 0 (the Dial handshake conn) dies on its first request,
		// after it was pooled; later connections behave.
		if conn == 0 {
			return nil, true
		}
		return &server.Response{}, false
	})
	c, err := Dial("tcp", st.addr()) // note: no WithRetry
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping over a stale pooled conn not healed: %v", err)
	}
	m := c.Metrics()
	if m.Redials != 1 {
		t.Fatalf("redials %d, want 1", m.Redials)
	}
	if m.Errors != 0 || m.Retries != 0 {
		t.Fatalf("metrics %+v: redial must not count as error or policy retry", m)
	}
}

// TestStaleConnNoRedialNonIdempotent: the same dead pooled connection under a
// factorize must surface the error — the server may or may not have executed
// the request, and factorize is not safe to repeat blindly.
func TestStaleConnNoRedialNonIdempotent(t *testing.T) {
	var requests atomic.Int64
	st := newStubServer(t, func(conn, req int, r *server.Request) (*server.Response, bool) {
		requests.Add(1)
		if conn == 0 {
			return nil, true
		}
		return &server.Response{Handle: 7, N: 9, Nnz: 33}, false
	})
	c, err := Dial("tcp", st.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a := sstar.GenGrid2D(3, 3, false, sstar.GenOptions{Seed: 1})
	_, _, ferr := c.Factorize(context.Background(), a, sstar.DefaultOptions())
	if ferr == nil {
		t.Fatal("factorize on a stale conn silently repeated")
	}
	if m := c.Metrics(); m.Redials != 0 {
		t.Fatalf("redials %d, want 0 for a non-idempotent op", m.Redials)
	}
	if n := requests.Load(); n != 1 {
		t.Fatalf("factorize hit the server %d times", n)
	}
}

// TestRetryBudgetStopsEarly: when the next backoff would overrun the policy
// budget, the client gives up instead of sleeping past it.
func TestRetryBudgetStopsEarly(t *testing.T) {
	var answered atomic.Int64
	st := newStubServer(t, func(conn, req int, r *server.Request) (*server.Response, bool) {
		answered.Add(1)
		return shedResponse(), false
	})
	c, err := Dial("tcp", st.addr(), WithRetry(RetryPolicy{
		MaxRetries:  10,
		BaseBackoff: 200 * time.Millisecond,
		Budget:      time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	t0 := time.Now()
	perr := c.Ping(context.Background())
	if !errors.Is(perr, sstar.ErrOverloaded) {
		t.Fatalf("err %v, want ErrOverloaded", perr)
	}
	if el := time.Since(t0); el > 100*time.Millisecond {
		t.Fatalf("budget ignored: call took %v", el)
	}
	if n := answered.Load(); n != 1 {
		t.Fatalf("server answered %d times, want 1 (budget forbids the first backoff)", n)
	}
}

// TestContextCancelStopsRetrying: cancellation wins over the retry policy
// mid-backoff.
func TestContextCancelStopsRetrying(t *testing.T) {
	st := newStubServer(t, func(conn, req int, r *server.Request) (*server.Response, bool) {
		return shedResponse(), false
	})
	c, err := Dial("tcp", st.addr(), WithRetry(RetryPolicy{MaxRetries: 100, BaseBackoff: 50 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	if err := c.PingCtx(ctx); err == nil {
		t.Fatal("canceled call succeeded")
	}
	if el := time.Since(t0); el > time.Second {
		t.Fatalf("cancel did not interrupt the retry loop (%v)", el)
	}
}

// TestBackoffBounds: every draw lies in [d/2, d] for the attempt's exponential
// d, capped at MaxBackoff.
func TestBackoffBounds(t *testing.T) {
	p := RetryPolicy{MaxRetries: 8, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
	for attempt := 0; attempt < 8; attempt++ {
		d := min(p.BaseBackoff<<attempt, p.MaxBackoff)
		for i := 0; i < 50; i++ {
			got := p.backoff(attempt)
			if got < d/2 || got > d {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, got, d/2, d)
			}
		}
	}
}

// TestRetryableClassification pins the retry-safety table: what may be
// repeated depends on both what failed and what was asked.
func TestRetryableClassification(t *testing.T) {
	shed := &server.RemoteError{Code: server.CodeOverloaded, Msg: "x"}
	singular := &server.RemoteError{Code: server.CodeSingular, Msg: "x"}
	transport := errors.New("read tcp: connection reset by peer")
	cases := []struct {
		op   server.Op
		err  error
		want bool
	}{
		{server.OpFactorize, shed, true}, // shed = never executed: safe for any op
		{server.OpFree, shed, true},
		{server.OpSolve, shed, true},
		{server.OpSolve, singular, false}, // answered: retry cannot change the answer
		{server.OpSolve, transport, true}, // ambiguous, but solve is idempotent
		{server.OpPing, transport, true},
		{server.OpFactorize, transport, false}, // ambiguous and allocates per execution
		{server.OpFree, transport, false},
		{server.OpSolve, context.Canceled, false},
		{server.OpPing, context.DeadlineExceeded, false},
	}
	for _, tc := range cases {
		if got := retryable(tc.op, tc.err); got != tc.want {
			t.Errorf("retryable(%v, %v) = %v, want %v", tc.op, tc.err, got, tc.want)
		}
	}
}
