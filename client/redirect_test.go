package client

// Redirect-following tests against scripted shards: a CodeRedirect /
// CodeNotOwner answer naming another address is a retry-with-new-target the
// client performs inline — invisible to the caller, counted in
// Metrics.Redirects, and bounded so a misconfigured fleet fails typed
// instead of looping.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"sstar"
	"sstar/internal/server"
)

// TestRedirectFollowedTransparently: shard A refuses a factorize with the
// owner's address, the client re-aims at B without surfacing an error, and
// subsequent handle ops go straight to B (the learned owner), never back
// through A.
func TestRedirectFollowedTransparently(t *testing.T) {
	var aReqs, bReqs atomic.Int64
	var bAddr atomic.Value // set after B starts; A's script needs it

	b := newStubServer(t, func(conn, req int, r *server.Request) (*server.Response, bool) {
		bReqs.Add(1)
		switch r.Op {
		case server.OpFactorize:
			// A real shard stamps its advertised address (Placement hook) so
			// the client aims handle ops at the owner directly.
			return &server.Response{Handle: 42, N: 3, Nnz: 5, Key: 0xbeef, Addr: bAddr.Load().(string)}, false
		case server.OpSolve:
			if r.Handle != 42 || r.Key != 0xbeef {
				return &server.Response{Err: "stub: wrong handle/key hint", Code: server.CodeBadHandle}, false
			}
			return &server.Response{X: []float64{1, 2, 3}}, false
		}
		return &server.Response{Err: "stub: unexpected op"}, false
	})
	bAddr.Store(b.addr())
	a := newStubServer(t, func(conn, req int, r *server.Request) (*server.Response, bool) {
		aReqs.Add(1)
		return &server.Response{
			Err:  sstar.ErrRedirect.Error(),
			Code: server.CodeRedirect,
			Addr: bAddr.Load().(string),
			Key:  0xbeef,
		}, false
	})

	c, err := Dial("tcp", a.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := sstar.GenGrid2D(2, 2, false, sstar.GenOptions{Seed: 1})
	h, _, err := c.Factorize(context.Background(), m, sstar.DefaultOptions())
	if err != nil {
		t.Fatalf("redirected factorize surfaced an error: %v", err)
	}
	if h.ID() != 42 || h.Key() != 0xbeef {
		t.Fatalf("handle = %d key %#x, want 42 / 0xbeef", h.ID(), h.Key())
	}
	if got := c.Metrics().Redirects; got != 1 {
		t.Errorf("Metrics().Redirects = %d, want 1", got)
	}
	if _, _, err := h.Solve(context.Background(), []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if got := aReqs.Load(); got != 1 {
		t.Errorf("shard A saw %d requests, want only the initial factorize", got)
	}
	if got := bReqs.Load(); got != 2 {
		t.Errorf("shard B saw %d requests, want factorize + solve", got)
	}
}

// TestRedirectPingPongBounded: two shards pointing at each other must yield
// a typed ErrRedirect after a bounded number of hops, not an infinite loop.
func TestRedirectPingPongBounded(t *testing.T) {
	var total atomic.Int64
	var aAddr, bAddr atomic.Value
	redirectTo := func(to *atomic.Value) func(int, int, *server.Request) (*server.Response, bool) {
		return func(conn, req int, r *server.Request) (*server.Response, bool) {
			total.Add(1)
			return &server.Response{
				Err:  sstar.ErrRedirect.Error(),
				Code: server.CodeRedirect,
				Addr: to.Load().(string),
			}, false
		}
	}
	a := newStubServer(t, redirectTo(&bAddr))
	b := newStubServer(t, redirectTo(&aAddr))
	aAddr.Store(a.addr())
	bAddr.Store(b.addr())

	c, err := Dial("tcp", a.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := sstar.GenGrid2D(2, 2, false, sstar.GenOptions{Seed: 2})
	_, _, err = c.Factorize(context.Background(), m, sstar.DefaultOptions())
	if !errors.Is(err, sstar.ErrRedirectLoop) {
		t.Fatalf("err = %v, want ErrRedirectLoop after bounded hops", err)
	}
	var loop *RedirectLoopError
	if !errors.As(err, &loop) {
		t.Fatalf("err = %T, want *RedirectLoopError", err)
	}
	if len(loop.Hops) < 2 {
		t.Errorf("RedirectLoopError.Hops = %v, want the traversed chain", loop.Hops)
	}
	if got := total.Load(); got > 16 {
		t.Errorf("ping-pong consumed %d requests — the hop bound did not hold", got)
	}
}

// TestRedirectWithoutAddressIsTerminal: a redirect that names no owner has
// nowhere to send the client; it surfaces as the typed error after one
// request.
func TestRedirectWithoutAddressIsTerminal(t *testing.T) {
	var reqs atomic.Int64
	a := newStubServer(t, func(conn, req int, r *server.Request) (*server.Response, bool) {
		reqs.Add(1)
		return &server.Response{Err: sstar.ErrNotOwner.Error(), Code: server.CodeNotOwner}, false
	})
	c, err := Dial("tcp", a.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := sstar.GenGrid2D(2, 2, false, sstar.GenOptions{Seed: 3})
	_, _, err = c.Factorize(context.Background(), m, sstar.DefaultOptions())
	if !errors.Is(err, sstar.ErrNotOwner) {
		t.Fatalf("err = %v, want ErrNotOwner", err)
	}
	if got := reqs.Load(); got != 1 {
		t.Errorf("addressless redirect consumed %d requests, want 1", got)
	}
	if got := c.Metrics().Redirects; got != 0 {
		t.Errorf("Metrics().Redirects = %d, want 0 (nothing was followed)", got)
	}
}
