package client_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"sstar"
	"sstar/client"
	"sstar/internal/server"
	"sstar/internal/wire"
)

// startSilentServer accepts connections and completes the protocol
// handshake, then reads requests and never answers — the worst case a
// deadline must cut through.
func startSilentServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var hello server.Hello
				if err := wire.ReadGob(conn, server.FrameHello, 1<<16, &hello); err != nil {
					return
				}
				if err := wire.WriteGob(conn, server.FrameHello, server.Hello{Magic: server.ProtoMagic, Version: server.ProtoVersion}); err != nil {
					return
				}
				// Swallow requests forever.
				for {
					req := new(server.Request)
					if err := wire.ReadGob(conn, server.FrameRequest, 1<<30, req); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String()
}

// TestCtxDeadlineCutsStalledRequest: a deadline must unblock a round trip
// stuck on a server that never answers, promptly and with the context's
// error.
func TestCtxDeadlineCutsStalledRequest(t *testing.T) {
	addr := startSilentServer(t)
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	err = c.PingCtx(ctx)
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("ping against a silent server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to cut the request", elapsed)
	}
	m := c.Metrics()
	if m.Canceled != 1 {
		t.Fatalf("Canceled = %d, want 1 (metrics %+v)", m.Canceled, m)
	}
}

// TestCtxCancelMidFlight: an asynchronous cancel (no deadline on the
// connection at all) must also unblock a stalled round trip.
func TestCtxCancelMidFlight(t *testing.T) {
	addr := startSilentServer(t)
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if err := c.PingCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
}

// TestCtxAlreadyCanceled: a dead context fails before any I/O happens.
func TestCtxAlreadyCanceled(t *testing.T) {
	addr := startServer(t, server.Config{Workers: 1})
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.PingCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
}

// TestCtxRoundTripsAndClientMetrics: the Ctx variants work end to end
// against a real server, a generous deadline never interferes, and the
// client's own counters add up.
func TestCtxRoundTripsAndClientMetrics(t *testing.T) {
	addr := startServer(t, server.Config{Workers: 2})
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	a := sstar.GenGrid2D(7, 7, false, sstar.GenOptions{Seed: 21})
	h, st, err := c.FactorizeCtx(ctx, a, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("first factorize hit the cache")
	}
	b := make([]float64, a.N)
	b[0] = 1
	x, _, err := h.SolveCtx(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := sstar.Residual(a, x, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
	vals := append([]float64(nil), a.Val...)
	for i := range vals {
		vals[i] *= 3
	}
	if _, err := h.RefactorizeCtx(ctx, vals); err != nil {
		t.Fatal(err)
	}
	a2 := a.Clone()
	copy(a2.Val, vals)
	if _, err := h.RefactorizeMatrixCtx(ctx, a2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StatsCtx(ctx); err != nil {
		t.Fatal(err)
	}
	if err := h.FreeCtx(ctx); err != nil {
		t.Fatal(err)
	}

	m := c.Metrics()
	if m.Requests != 6 {
		t.Fatalf("Requests = %d, want 6 (metrics %+v)", m.Requests, m)
	}
	if m.Errors != 0 || m.Canceled != 0 {
		t.Fatalf("unexpected failures in %+v", m)
	}
	if m.Dials < 1 {
		t.Fatalf("Dials = %d, want >= 1", m.Dials)
	}
	if m.Reused < 5 {
		t.Fatalf("Reused = %d, want >= 5 (sequential requests share one pooled connection)", m.Reused)
	}
}

// TestCtxObserverStrippedBeforeWire: a non-nil Options.Observer must not
// reach gob encoding (it would fail: the interface type is unregistered) —
// FactorizeCtx strips it.
func TestCtxObserverStrippedBeforeWire(t *testing.T) {
	addr := startServer(t, server.Config{Workers: 1})
	c, err := client.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	o := sstar.DefaultOptions()
	o.Observer = sstar.NewTrace(0)
	a := sstar.GenGrid2D(6, 6, false, sstar.GenOptions{Seed: 22})
	h, _, err := c.Factorize(context.Background(), a, o)
	if err != nil {
		t.Fatalf("factorize with local observer failed: %v", err)
	}
	h.Free(context.Background())
}
