package client

import (
	"context"

	"sstar"
)

// The XCtx method names date from when the plain names took no context; the
// context-first forms are now canonical (see client.go). Each alias below is
// a one-line delegation kept so existing callers compile unchanged. New code
// should call the canonical method.

// PingCtx is a deprecated alias of Ping.
//
// Deprecated: use Ping.
func (c *Client) PingCtx(ctx context.Context) error { return c.Ping(ctx) }

// StatsCtx is a deprecated alias of Stats.
//
// Deprecated: use Stats.
func (c *Client) StatsCtx(ctx context.Context) (ServerStats, error) { return c.Stats(ctx) }

// FactorizeCtx is a deprecated alias of Factorize.
//
// Deprecated: use Factorize.
func (c *Client) FactorizeCtx(ctx context.Context, a *sstar.Matrix, o sstar.Options) (*Handle, RequestStats, error) {
	return c.Factorize(ctx, a, o)
}

// SolveCtx is a deprecated alias of Solve.
//
// Deprecated: use Solve.
func (h *Handle) SolveCtx(ctx context.Context, b []float64) ([]float64, RequestStats, error) {
	return h.Solve(ctx, b)
}

// SolveManyCtx is a deprecated alias of SolveMany.
//
// Deprecated: use SolveMany.
func (h *Handle) SolveManyCtx(ctx context.Context, b []float64, nrhs int) ([]float64, RequestStats, error) {
	return h.SolveMany(ctx, b, nrhs)
}

// RefactorizeCtx is a deprecated alias of Refactorize.
//
// Deprecated: use Refactorize.
func (h *Handle) RefactorizeCtx(ctx context.Context, values []float64) (RequestStats, error) {
	return h.Refactorize(ctx, values)
}

// RefactorizeMatrixCtx is a deprecated alias of RefactorizeMatrix.
//
// Deprecated: use RefactorizeMatrix.
func (h *Handle) RefactorizeMatrixCtx(ctx context.Context, a *sstar.Matrix) (RequestStats, error) {
	return h.RefactorizeMatrix(ctx, a)
}

// FreeCtx is a deprecated alias of Free.
//
// Deprecated: use Free.
func (h *Handle) FreeCtx(ctx context.Context) error { return h.Free(ctx) }
