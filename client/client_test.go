package client_test

import (
	"context"
	"net"
	"testing"

	"sstar"
	"sstar/client"
	"sstar/internal/server"
)

func startServer(t *testing.T, cfg server.Config) string {
	t.Helper()
	s := server.New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return l.Addr().String()
}

func TestDialFailsFast(t *testing.T) {
	// A listener that is immediately closed: Dial must fail eagerly.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	if _, err := client.Dial("tcp", addr); err == nil {
		t.Fatal("Dial to a dead address succeeded")
	}
}

func TestConnectionReuseAndErrorRecovery(t *testing.T) {
	addr := startServer(t, server.Config{Workers: 2})
	c, err := client.Dial("tcp", addr, client.WithMaxIdle(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a := sstar.GenGrid2D(7, 7, false, sstar.GenOptions{Seed: 4})
	h, _, err := c.Factorize(context.Background(), a, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != a.N || h.Nnz() != a.Nnz() || h.ID() == 0 {
		t.Fatalf("handle metadata N=%d nnz=%d id=%d", h.N(), h.Nnz(), h.ID())
	}
	// Many sequential requests over the pooled connection.
	b := make([]float64, a.N)
	b[0] = 1
	for i := 0; i < 20; i++ {
		x, _, err := h.Solve(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		if r := sstar.Residual(a, x, b); r > 1e-9 {
			t.Fatalf("iteration %d residual %g", i, r)
		}
	}
	// An in-band server error must not poison the client.
	if _, _, err := h.Solve(context.Background(), make([]float64, 3)); err == nil {
		t.Fatal("short rhs accepted")
	}
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("client broken after server-side error: %v", err)
	}
	if _, _, err := h.Solve(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Solve(context.Background(), b); err == nil {
		t.Fatal("solve on freed handle succeeded")
	}

	// Close, then further calls fail cleanly.
	c.Close()
	if err := c.Ping(context.Background()); err == nil {
		t.Fatal("ping on closed client succeeded")
	}
}
