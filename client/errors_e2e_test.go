package client_test

import (
	"context"
	"errors"
	"testing"

	"sstar"
	"sstar/client"
	"sstar/internal/server"
)

// TestSingularTypedThroughClient is the end-to-end error-taxonomy check: a
// numerically singular matrix submitted through a real client over a real
// connection fails with an error that matches sstar.ErrSingular via
// errors.Is — the same branch a caller of the local library API would take —
// is never retried (retrying cannot fix the input), and leaks nothing on the
// server.
func TestSingularTypedThroughClient(t *testing.T) {
	addr := startServer(t, server.Config{Workers: 1})
	c, err := client.Dial("tcp", addr, client.WithRetry(client.DefaultRetryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sing := &sstar.Matrix{
		N: 2, M: 2,
		RowPtr: []int{0, 2, 4},
		ColInd: []int{0, 1, 0, 1},
		Val:    []float64{1, 1, 1, 1}, // rank 1
	}
	h, _, ferr := c.Factorize(context.Background(), sing, sstar.DefaultOptions())
	if ferr == nil {
		t.Fatal("singular matrix factorized")
	}
	if h != nil {
		t.Fatal("failed factorize returned a handle")
	}
	if !errors.Is(ferr, sstar.ErrSingular) {
		t.Fatalf("errors.Is(ErrSingular) false for %v", ferr)
	}
	var re *client.RemoteError
	if !errors.As(ferr, &re) {
		t.Fatalf("error %v is not a RemoteError", ferr)
	}

	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Factorizes != 1 {
		t.Fatalf("server ran %d factorizes: the typed singular failure was retried", st.Factorizes)
	}
	if st.Handles != 0 {
		t.Fatalf("%d handles leaked by the failed factorize", st.Handles)
	}
	if st.Errors != 1 {
		t.Fatalf("server error counter %d, want 1", st.Errors)
	}
	if m := c.Metrics(); m.Retries != 0 || m.Errors != 1 {
		t.Fatalf("client metrics %+v, want 0 retries and 1 error", m)
	}

	// The same client and server still factorize and solve a healthy system.
	a := sstar.GenGrid2D(6, 6, false, sstar.GenOptions{Seed: 4})
	good, _, err := c.Factorize(context.Background(), a, sstar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	b[0] = 1
	x, _, err := good.Solve(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if r := sstar.Residual(a, x, b); r > 1e-9 {
		t.Fatalf("residual %g after the singular episode", r)
	}
	if err := good.Free(context.Background()); err != nil {
		t.Fatal(err)
	}
}
