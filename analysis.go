package sstar

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"sstar/internal/core"
	"sstar/internal/sparse"
)

// Analysis is the reusable result of the analyze phase: the preprocessing
// permutations, the George–Ng static symbolic structure and the 2D L/U
// supernode partition. Every step depends only on the nonzero *pattern* of
// the matrix — and the static structure bounds the fill of every possible
// partial-pivoting interchange sequence — so one Analysis is valid for any
// matrix sharing the pattern, whatever its values. It is immutable after
// construction and safe to share across concurrent FactorizeWith calls.
type Analysis struct {
	sym  *core.Symbolic
	opts Options
	pat  *sparse.Pattern
	key  uint64

	// sketch is the lazily computed pattern fingerprint of Sketch (the
	// near-miss cache lookup key); once-guarded so concurrent readers of a
	// shared Analysis stay safe.
	sketchOnce sync.Once
	sketch     PatternSketch
}

// Analyze runs the analyze phase alone, for callers that factorize many
// matrices with one pattern (time stepping, Newton iterations, a solver
// service): pay for ordering + symbolic factorization + partitioning once,
// then FactorizeWith each numeric instance.
func Analyze(a *Matrix, o Options) (*Analysis, error) {
	if err := validate(a, o); err != nil {
		return nil, err
	}
	return &Analysis{
		sym:  o.analyze(a),
		opts: o,
		pat:  sparse.PatternOf(a),
		key:  StructureKey(a, o),
	}, nil
}

// FactorizeWith numerically factorizes a, which must have exactly the
// nonzero pattern the Analysis was computed from. The error path (not a
// panic) makes it safe to feed untrusted matrices: a pattern mismatch is
// reported before any numeric work starts.
func (an *Analysis) FactorizeWith(a *Matrix) (*Factorization, error) {
	if a == nil {
		return nil, fmt.Errorf("sstar: FactorizeWith: nil matrix")
	}
	if a.N != an.pat.N || a.M != an.pat.N {
		return nil, fmt.Errorf("sstar: FactorizeWith: matrix is %dx%d, analysis is for order %d", a.N, a.M, an.pat.N)
	}
	if !an.pat.EqualCSR(a) {
		return nil, fmt.Errorf("sstar: FactorizeWith: matrix pattern differs from the analyzed pattern (%d vs %d nonzeros)", a.Nnz(), an.pat.Nnz())
	}
	fact, err := core.FactorizeHostObs(a, an.sym, an.opts.HostWorkers, sinkFor(an.opts.Observer))
	if err != nil {
		return nil, err
	}
	return &Factorization{
		sym: an.sym, fact: fact,
		hostWorkers: an.opts.HostWorkers,
		observer:    an.opts.Observer,
		patHash:     patternHash(a), patNnz: a.Nnz(),
	}, nil
}

// N returns the matrix order the analysis was computed for.
func (an *Analysis) N() int { return an.pat.N }

// Nnz returns the nonzero count of the analyzed pattern.
func (an *Analysis) Nnz() int { return an.pat.Nnz() }

// Key returns the structure key of the analyzed (pattern, options) pair,
// the value StructureKey reports for any matching matrix.
func (an *Analysis) Key() uint64 { return an.key }

// Options returns the options the analysis was computed with.
func (an *Analysis) Options() Options { return an.opts }

// Matches reports whether a has exactly the analyzed pattern, i.e. whether
// FactorizeWith would accept it.
func (an *Analysis) Matches(a *Matrix) bool { return a != nil && an.pat.EqualCSR(a) }

// StaticFill returns the entry count of the static structure.
func (an *Analysis) StaticFill() int { return an.sym.Static.NnzTotal() }

// Blocks returns the number of supernode panels of the 2D partition.
func (an *Analysis) Blocks() int { return an.sym.Partition.NB }

// Blocking reports the panel blocking the analysis settled on. Like
// everything else in an Analysis it is a pure function of the (pattern,
// options) pair, so a cached Analysis carries its blocking choice.
func (an *Analysis) Blocking() BlockingChoice { return blockingOf(an.sym) }

// patternHash returns a 64-bit FNV-1a hash of the nonzero structure of a:
// the order, the row pointers and the column indices. Values are excluded —
// two matrices with the same pattern hash identically.
func patternHash(a *Matrix) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(x int) {
		binary.LittleEndian.PutUint64(b[:], uint64(x))
		h.Write(b[:])
	}
	put(a.N)
	put(a.M)
	for _, p := range a.RowPtr {
		put(p)
	}
	for _, j := range a.ColInd {
		put(j)
	}
	return h.Sum64()
}

// StructureKey returns a 64-bit key identifying the (nonzero pattern,
// analysis options) pair of a. Matrices that differ only in values map to
// the same key, which is what makes it the right cache key for an Analysis:
// per the paper's pivot-independence property the analyze phase is a pure
// function of the pattern, so a cached Analysis under this key serves every
// matrix that hashes to it (after an exact pattern check to rule out the
// astronomically unlikely collision). Options that cannot change the
// analysis or the factors (HostWorkers: the parallel factors are
// bit-identical to sequential; Observer: observation never changes numeric
// results) are deliberately excluded, so one cached Analysis serves
// requests at any parallelism or observation level.
func StructureKey(a *Matrix, o Options) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(b[:], x)
		h.Write(b[:])
	}
	put(patternHash(a))
	put(uint64(int64(o.BlockSize)))
	put(uint64(int64(o.Amalgamate)))
	if o.SkipOrdering {
		put(1)
	} else {
		put(0)
	}
	h.Write([]byte(o.Ordering))
	put(math.Float64bits(o.PivotThreshold))
	return h.Sum64()
}
