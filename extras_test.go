package sstar

import (
	"math"
	"testing"
)

func TestFacadeSolveTranspose(t *testing.T) {
	a := GenGrid2D(9, 9, false, GenOptions{Seed: 61, Convection: 0.4})
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(a.N, 62)
	x, err := f.SolveTranspose(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a.Transpose(), x, b); r > 1e-9 {
		t.Fatalf("transpose residual %g", r)
	}
	if _, err := f.SolveTranspose(make([]float64, 2)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestFacadeSolveMany(t *testing.T) {
	a := GenCircuit(60, 3, GenOptions{Seed: 63})
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nrhs := 2
	b := make([]float64, a.N*nrhs)
	copy(b, rhs(a.N, 64))
	copy(b[a.N:], rhs(a.N, 65))
	x, err := f.SolveMany(b, nrhs)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < nrhs; j++ {
		if r := Residual(a, x[j*a.N:(j+1)*a.N], b[j*a.N:(j+1)*a.N]); r > 1e-9 {
			t.Fatalf("rhs %d residual %g", j, r)
		}
	}
}

func TestFacadeRefineAndCondEst(t *testing.T) {
	a := GenGrid2D(8, 8, false, GenOptions{Seed: 66})
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(a.N, 67)
	x, _ := f.Solve(b)
	res := f.Refine(a, x, b, 1e-14, 5)
	if res.Berr > 1e-12 {
		t.Fatalf("refined backward error %g", res.Berr)
	}
	c := f.CondEst(a)
	if c < 1 || math.IsInf(c, 0) || math.IsNaN(c) {
		t.Fatalf("condition estimate %g", c)
	}
}

func TestFacadeStatsAndThreshold(t *testing.T) {
	a := GenGrid2D(10, 10, false, GenOptions{Seed: 68, WeakDiagFraction: 0.2})
	o := DefaultOptions()
	fc, err := Factorize(a, o)
	if err != nil {
		t.Fatal(err)
	}
	o.PivotThreshold = 0.05
	ft, err := Factorize(a, o)
	if err != nil {
		t.Fatal(err)
	}
	sc, st := fc.Stats(a), ft.Stats(a)
	if st.Interchanges > sc.Interchanges {
		t.Fatalf("threshold pivoting increased interchanges (%d > %d)", st.Interchanges, sc.Interchanges)
	}
	if sc.Blas3Fraction <= 0 || sc.GrowthFactor <= 0 {
		t.Fatalf("stats incomplete: %+v", sc)
	}
	b := rhs(a.N, 69)
	x, _ := ft.Solve(b)
	if r := Residual(a, x, b); r > 1e-8 {
		t.Fatalf("threshold-pivoted residual %g", r)
	}
}

func TestFacadeEquilibrate(t *testing.T) {
	a := GenCircuit(50, 3, GenOptions{Seed: 70})
	bad := a.Clone()
	for i := 0; i < bad.N; i++ {
		_, vals := bad.Row(i)
		s := math.Pow(10, float64(i%9)-4)
		for k := range vals {
			vals[k] *= s
		}
	}
	scaled, rs, cs := Equilibrate(bad)
	f, err := Factorize(scaled, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(bad.N, 71)
	rb := make([]float64, bad.N)
	for i := range rb {
		rb[i] = rs[i] * b[i]
	}
	y, _ := f.Solve(rb)
	x := make([]float64, bad.N)
	for j := range x {
		x[j] = cs[j] * y[j]
	}
	if r := Residual(bad, x, b); r > 1e-9 {
		t.Fatalf("equilibrated residual %g", r)
	}
}

func TestSolveDistributed(t *testing.T) {
	a := GenGrid2D(12, 12, false, GenOptions{Seed: 72, WeakDiagFraction: 0.1})
	b := rhs(a.N, 73)
	for _, mapping := range []Mapping{Map1DCA, Map1DRAPID, Map2D} {
		f, _, err := FactorizeParallel(a, ParOptions{Options: DefaultOptions(), Procs: 4, Mapping: mapping})
		if err != nil {
			t.Fatal(err)
		}
		x, st, err := f.SolveDistributed(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := Residual(a, x, b); r > 1e-9 {
			t.Fatalf("%s: residual %g", mapping, r)
		}
		if st.ParallelTime <= 0 {
			t.Fatalf("%s: bad solve stats %+v", mapping, st)
		}
		// Must agree with the sequential solve.
		xs, _ := f.Solve(b)
		for i := range x {
			d := x[i] - xs[i]
			if d > 1e-10 || d < -1e-10 {
				t.Fatalf("%s: distributed solve differs at %d", mapping, i)
			}
		}
	}
	// Sequential factorization path: single-processor model.
	fs, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, st, err := fs.SolveDistributed(b)
	if err != nil {
		t.Fatal(err)
	}
	if st.SentMessages != 0 {
		t.Fatalf("sequential-model solve sent %d messages", st.SentMessages)
	}
	if r := Residual(a, x, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}
