// An external test package (not package sstar): internal/bench imports the
// sstar facade for the service benches, so an in-package test importing
// bench would be an import cycle.
package sstar_test

// One benchmark per table and figure of the paper's evaluation section.
// Each bench regenerates its artifact end to end (analysis, numeric
// factorization on the virtual machine, table rendering). The benchmark
// scale is reduced relative to `sstar-bench` defaults so a full
// `go test -bench=.` pass stays in the minutes range; run
// `go run ./cmd/sstar-bench -experiment all` for the DESIGN.md-scale runs
// recorded in EXPERIMENTS.md.

import (
	"testing"

	"sstar"
	"sstar/internal/bench"
)

// benchCfg is the reduced configuration used by the Benchmark* targets.
func benchCfg() bench.Config { return bench.Config{Scale: 0.35, BSize: 16, Amalg: 4} }

func runTable(b *testing.B, f func() (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.Table1(benchCfg()) })
}

func BenchmarkTable2(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.Table2(benchCfg()) })
}

func BenchmarkTable3(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.Table3(benchCfg(), []int{2, 8, 32}) })
}

func BenchmarkFig16(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.Fig16(benchCfg(), []int{2, 8, 32}) })
}

func BenchmarkTable4(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.Table4(benchCfg(), []int{1, 8, 32}) })
}

func BenchmarkTable5(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.Table5(benchCfg(), []int{16, 64}) })
}

func BenchmarkTable6(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.Table6(benchCfg(), []int{8, 32, 128}) })
}

func BenchmarkFig17(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.Fig17(benchCfg(), 32) })
}

func BenchmarkFig18(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.Fig18(benchCfg(), 32) })
}

func BenchmarkTable7(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.Table7(benchCfg(), []int{2, 8, 32}) })
}

func BenchmarkAblationBlockSize(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.AblationBlockSize(benchCfg(), "sherman5", []int{8, 16, 25, 40}, 16)
	})
}

func BenchmarkAblationAmalgamation(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.AblationAmalgamation(benchCfg(), "sherman5", []int{0, 2, 4, 6, 8})
	})
}

func BenchmarkAblationGridAspect(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.AblationGridAspect(benchCfg(), "goodwin", 16)
	})
}

func BenchmarkAblationMapping(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.AblationMapping(benchCfg(), "goodwin", []int{4, 16})
	})
}

// BenchmarkFactorizeSeq measures the real (host) speed of the sequential S*
// numeric factorization on a mid-size suite matrix.
func BenchmarkFactorizeSeq(b *testing.B) {
	spec := bench.ByName("sherman5")
	a := spec.Gen(0.5)
	f, err := sstar.Factorize(a, sstar.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Refactorize(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolve measures the triangular-solve path.
func BenchmarkSolve(b *testing.B) {
	spec := bench.ByName("sherman5")
	a := spec.Gen(0.5)
	f, err := sstar.Factorize(a, sstar.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rhsVec := make([]float64, a.N)
	for i := range rhsVec {
		rhsVec[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Solve(rhsVec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimBlas3Fraction(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.Blas3Fraction(benchCfg()) })
}

func BenchmarkClaimTheorem2Buffers(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.Theorem2Buffers(benchCfg(), []int{8, 32}) })
}

func BenchmarkAblationOrdering(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.AblationOrdering(benchCfg()) })
}

func BenchmarkClaimSolveCost(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.SolveCost(benchCfg(), 8) })
}

func BenchmarkScalingReport(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.ScalingReport(benchCfg(), []int{4, 16}) })
}

func BenchmarkClaimCaveats(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.Caveats(benchCfg(), 8) })
}

func BenchmarkClaimPrepCost(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.PrepCost(benchCfg()) })
}
