package sstar

import (
	"fmt"

	"sstar/internal/core"
	"sstar/internal/machine"
)

// SolveTranspose solves Aᵀ x = b using the same factors, without forming or
// factorizing Aᵀ.
func (f *Factorization) SolveTranspose(b []float64) ([]float64, error) {
	if len(b) != f.sym.N {
		return nil, fmt.Errorf("sstar: rhs length %d, want %d", len(b), f.sym.N)
	}
	return f.fact.SolveTranspose(b), nil
}

// SolveMany solves A X = B for nrhs right-hand sides stored column-major in b
// (b[j*n:(j+1)*n] holds column j).
func (f *Factorization) SolveMany(b []float64, nrhs int) ([]float64, error) {
	if nrhs < 1 {
		return nil, fmt.Errorf("sstar: SolveMany needs nrhs >= 1, got %d", nrhs)
	}
	return f.fact.SolveMany(b, nrhs)
}

// SolveManyExact solves A X = B for nrhs column-major right-hand sides with a
// stronger guarantee than SolveMany: every solution column is bitwise
// identical to what Solve returns for that column alone. It trades the
// blocked BLAS-3 panel kernels for a lockstep replay of Solve's per-column
// operation sequence, still amortizing the factor-block memory traffic across
// the batch. The server's solve coalescer uses it so that merging concurrent
// single-RHS requests is invisible to clients, bit for bit.
func (f *Factorization) SolveManyExact(b []float64, nrhs int) ([]float64, error) {
	if nrhs < 1 {
		return nil, fmt.Errorf("sstar: SolveManyExact needs nrhs >= 1, got %d", nrhs)
	}
	return f.fact.SolveManyExact(b, nrhs)
}

// RefineResult reports iterative refinement progress.
type RefineResult = core.RefineResult

// Refine improves a computed solution x of A x = b in place by iterative
// refinement with the existing factors, returning the iteration count and the
// final componentwise backward error.
func (f *Factorization) Refine(a *Matrix, x, b []float64, tol float64, maxIter int) RefineResult {
	return f.fact.Refine(a, x, b, tol, maxIter)
}

// CondEst estimates the 1-norm condition number of a using Hager's algorithm
// with the computed factors (a few extra solves with A and Aᵀ).
func (f *Factorization) CondEst(a *Matrix) float64 { return f.fact.CondEst(a) }

// Stats summarizes the numeric factorization: interchange count, pivot
// growth, the BLAS-3 work fraction and factor storage.
type Stats = core.FactStats

// Stats returns summary statistics; a supplies the original values for the
// growth-factor reference.
func (f *Factorization) Stats(a *Matrix) Stats {
	return f.fact.Stats(core.MaxAbs(a.Val))
}

// SolveStats reports the modeled cost of a distributed triangular solve.
type SolveStats struct {
	ParallelTime float64
	SentBytes    int64
	SentMessages int64
}

// SolveDistributed solves A x = b on the virtual machine with the factors
// distributed across the processors of the preceding FactorizeParallel run:
// 1D mappings run the fan-in solver over the factorization's own column-block
// owners, 2D mappings the block-cyclic 2D solver on the same grid. It
// demonstrates the paper's remark that the triangular solves cost far less
// than the factorization. On a Factorization produced by the sequential
// Factorize it models a single-processor solve.
func (f *Factorization) SolveDistributed(b []float64) ([]float64, *SolveStats, error) {
	if len(b) != f.sym.N {
		return nil, nil, fmt.Errorf("sstar: rhs length %d, want %d", len(b), f.sym.N)
	}
	var res *core.SolveResult
	var err error
	switch {
	case f.parGrid[0] > 0:
		res, err = core.SolvePar2D(f.fact, f.parGrid[0], f.parGrid[1], f.parModel, b)
	case f.parOwner != nil:
		res, err = core.SolvePar1D(f.fact, f.parOwner, f.parProcs, f.parModel, b)
	default:
		owner := make([]int, f.sym.Partition.NB)
		res, err = core.SolvePar1D(f.fact, owner, 1, machine.T3E(), b)
	}
	if err != nil {
		return nil, nil, err
	}
	return res.X, &SolveStats{
		ParallelTime: res.ParallelTime,
		SentBytes:    res.SentBytes,
		SentMessages: res.SentMessages,
	}, nil
}

// Equilibrate computes simple row/column scalings for a badly scaled matrix,
// returning the scaled matrix R·A·C and the scale vectors. Solve the original
// system as: factorize the scaled matrix, solve with (R b), multiply the
// result by C componentwise.
func Equilibrate(a *Matrix) (scaled *Matrix, rowScale, colScale []float64) {
	return core.Equilibrate(a)
}
