package sstar

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPatchMatchesAnalyzeSkipOrdering pins the facade contract in the case
// where it is exact: under SkipOrdering the cached ordering is the identity
// and a fixed BlockSize pins the blocking, so a patched analysis must agree
// with a from-scratch Analyze on everything observable — key, static fill,
// blocking, factors and solutions. (Under adaptive blocking the patch
// re-applies the base's settled amalgamation factor rather than re-choosing,
// so only the static structure — not the panel bounds — is pinned to a fresh
// Analyze there.)
func TestPatchMatchesAnalyzeSkipOrdering(t *testing.T) {
	opts := Options{SkipOrdering: true, PatchMaxDiff: 1, BlockSize: 16, Amalgamate: 4}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := GenCircuit(60+rng.Intn(100), 3, GenOptions{Seed: seed})
		an, err := Analyze(base, opts)
		if err != nil {
			t.Fatal(err)
		}
		pert := GenPerturb(base, 1+rng.Intn(5), rng.Intn(4), seed+1)
		patched, info, err := an.Patch(pert)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Patched {
			t.Fatalf("patch fell back: %+v", info)
		}
		full, err := Analyze(pert, opts)
		if err != nil {
			t.Fatal(err)
		}
		if patched.Key() != full.Key() || patched.StaticFill() != full.StaticFill() ||
			patched.Blocks() != full.Blocks() || patched.Blocking() != full.Blocking() {
			return false
		}
		fp, err := patched.FactorizeWith(pert)
		if err != nil {
			t.Fatal(err)
		}
		ff, err := full.FactorizeWith(pert)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, pert.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xp, _ := fp.Solve(b)
		xf, _ := ff.Solve(b)
		for i := range xp {
			if xp[i] != xf[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPatchAdaptiveBaseReusesChoice: under adaptive blocking the patched
// analysis re-applies the base's settled amalgamation factor. The static
// structure is still exactly Analyze's (it does not depend on blocking), and
// the patched partition factorizes correctly.
func TestPatchAdaptiveBaseReusesChoice(t *testing.T) {
	opts := Options{SkipOrdering: true, PatchMaxDiff: 1}
	base := GenCircuit(250, 4, GenOptions{Seed: 17})
	an, err := Analyze(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	pert := GenPerturb(base, 4, 3, 18)
	patched, info, err := an.Patch(pert)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Patched {
		t.Fatalf("patch fell back: %+v", info)
	}
	full, err := Analyze(pert, opts)
	if err != nil {
		t.Fatal(err)
	}
	if patched.Key() != full.Key() || patched.StaticFill() != full.StaticFill() {
		t.Fatal("patched static structure differs from a fresh Analyze")
	}
	if got, want := patched.Blocking().Amalgamate, an.Blocking().Amalgamate; got != want {
		t.Fatalf("patched amalgamation factor %d, want base's settled %d", got, want)
	}
	f, err := patched.FactorizeWith(pert)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, pert.N)
	for i := range b {
		b[i] = float64(i%9) - 4
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(pert, x, b); r > 1e-10 {
		t.Fatalf("adaptive-base patched solve residual %g", r)
	}
}

// TestPatchWithOrderingFactorizes checks the default path (ordering reused
// from the cached analysis): the patched analysis must accept and correctly
// factorize the new matrix even though a fresh Analyze might order it
// differently.
func TestPatchWithOrderingFactorizes(t *testing.T) {
	base := GenGrid2D(14, 14, false, GenOptions{Seed: 21})
	an, err := Analyze(base, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pert := GenPerturb(base, 4, 2, 9)
	patched, info, err := an.Patch(pert)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Patched {
		t.Fatalf("patch fell back: %+v", info)
	}
	if !patched.Matches(pert) {
		t.Fatal("patched analysis does not match the new pattern")
	}
	f, err := patched.FactorizeWith(pert)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, pert.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(pert, x, b); r > 1e-10 {
		t.Fatalf("patched-analysis solve residual %g", r)
	}
	ph := patched.Phases()
	if ph.Patch <= 0 {
		t.Fatalf("patched analysis reports no patch time: %+v", ph)
	}
	if ph.Ordering != 0 || ph.Symbolic != 0 {
		t.Fatalf("patched analysis should inherit (not run) ordering/symbolic: %+v", ph)
	}
}

func TestPatchIdenticalPatternReturnsReceiver(t *testing.T) {
	a := GenCircuit(120, 3, GenOptions{Seed: 2})
	an, err := Analyze(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	same, info, err := an.Patch(a)
	if err != nil {
		t.Fatal(err)
	}
	if same != an || !info.Patched || info.ReusedCols != a.N {
		t.Fatalf("identical pattern should return the receiver: %+v", info)
	}
}

func TestPatchThresholdAndDisabledFallBack(t *testing.T) {
	base := GenCircuit(150, 3, GenOptions{Seed: 5})
	pert := GenPerturb(base, 200, 100, 6)

	an, err := Analyze(base, Options{PatchMaxDiff: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	full, info, err := an.Patch(pert)
	if err != nil {
		t.Fatal(err)
	}
	if info.Patched || info.Fallback != "diff-above-threshold" {
		t.Fatalf("want threshold fallback, got %+v", info)
	}
	if !full.Matches(pert) {
		t.Fatal("fallback analysis does not match the new pattern")
	}

	an, err = Analyze(base, Options{PatchMaxDiff: -1})
	if err != nil {
		t.Fatal(err)
	}
	small := GenPerturb(base, 1, 0, 7)
	_, info, err = an.Patch(small)
	if err != nil {
		t.Fatal(err)
	}
	if info.Patched || info.Fallback != "disabled" {
		t.Fatalf("want disabled fallback, got %+v", info)
	}
}

func TestPatchMaxDiffExcludedFromStructureKey(t *testing.T) {
	a := GenCircuit(80, 3, GenOptions{Seed: 3})
	k1 := StructureKey(a, Options{})
	k2 := StructureKey(a, Options{PatchMaxDiff: 0.5, HostWorkers: 8})
	if k1 != k2 {
		t.Fatal("PatchMaxDiff/HostWorkers must not change the structure key")
	}
}

func TestSketchSimilarity(t *testing.T) {
	a := GenCircuit(300, 4, GenOptions{Seed: 11})
	sa := SketchOf(a)
	if got := sa.Similarity(sa); got != 1 {
		t.Fatalf("self-similarity = %v, want 1", got)
	}
	near := GenPerturb(a, 3, 2, 12)
	if got := sa.Similarity(SketchOf(near)); got < 0.5 {
		t.Fatalf("near-miss similarity = %v, want >= 0.5", got)
	}
	far := GenCircuit(300, 4, GenOptions{Seed: 999})
	if got := sa.Similarity(SketchOf(far)); got > 0.5 {
		t.Fatalf("unrelated similarity = %v, want < 0.5", got)
	}
	other := GenCircuit(200, 4, GenOptions{Seed: 11})
	if got := sa.Similarity(SketchOf(other)); got != 0 {
		t.Fatalf("different-order similarity = %v, want 0", got)
	}
	an, err := Analyze(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if an.Sketch() != sa {
		t.Fatal("Analysis.Sketch disagrees with SketchOf on the same pattern")
	}
}
