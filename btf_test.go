package sstar

import (
	"math"
	"math/rand"
	"testing"
)

// reducibleMatrix builds a scrambled matrix with three irreducible blocks
// plus scalar tails.
func reducibleMatrix(seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	sizes := []int{12, 1, 8, 1, 6}
	n := 0
	for _, s := range sizes {
		n += s
	}
	coo := NewCOO(n, n)
	lo := 0
	for _, s := range sizes {
		for i := 0; i < s; i++ {
			coo.Add(lo+i, lo+i, 4+rng.Float64())
			if s > 1 {
				coo.Add(lo+i, lo+(i+1)%s, -1+0.1*rng.Float64()) // cycle: irreducible
				if rng.Float64() < 0.4 {
					coo.Add(lo+i, lo+rng.Intn(s), 0.3)
				}
			}
		}
		lo += s
	}
	// Upper couplings between blocks.
	for k := 0; k < 10; k++ {
		i := rng.Intn(n - 2)
		j := i + 1 + rng.Intn(n-i-1)
		coo.Add(i, j, 0.2)
	}
	a := coo.ToCSR()
	// Scramble.
	rp := rng.Perm(n)
	cp := rng.Perm(n)
	return a.Permute(rp, cp)
}

func TestFactorizeBTFSolve(t *testing.T) {
	a := reducibleMatrix(80)
	f, err := FactorizeBTF(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks() < 5 {
		t.Fatalf("expected >= 5 blocks, got %d (%v)", f.NumBlocks(), f.BlockSizes())
	}
	if frac := f.FactoredFraction(); frac >= 1 {
		t.Fatalf("factored fraction %v should be < 1 for a reducible matrix", frac)
	}
	b := rhs(a.N, 81)
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, x, b); r > 1e-10 {
		t.Fatalf("BTF residual %g", r)
	}
	// Cross-check against the monolithic factorization.
	mono, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	xm, _ := mono.Solve(b)
	for i := range x {
		if math.Abs(x[i]-xm[i]) > 1e-8*(1+math.Abs(xm[i])) {
			t.Fatalf("BTF and monolithic solves differ at %d: %g vs %g", i, x[i], xm[i])
		}
	}
}

func TestFactorizeBTFIrreducible(t *testing.T) {
	// A strongly connected matrix degenerates to one block; results must
	// still be right.
	a := GenGrid2D(7, 7, false, GenOptions{Seed: 82})
	f, err := FactorizeBTF(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks() != 1 {
		t.Fatalf("grid should be irreducible, got %d blocks", f.NumBlocks())
	}
	b := rhs(a.N, 83)
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, x, b); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
}

func TestFactorizeBTFTriangularInput(t *testing.T) {
	// A (scrambled) triangular matrix needs no LU at all: every block is
	// 1x1 and solving is pure substitution.
	n := 40
	rng := rand.New(rand.NewSource(84))
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2+rng.Float64())
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.1 {
				coo.Add(i, j, rng.Float64())
			}
		}
	}
	a := coo.ToCSR().Permute(rng.Perm(n), rng.Perm(n))
	f, err := FactorizeBTF(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks() != n {
		t.Fatalf("triangular input gave %d blocks, want %d", f.NumBlocks(), n)
	}
	if f.FactoredFraction() != 0 {
		t.Fatalf("factored fraction %v, want 0", f.FactoredFraction())
	}
	b := rhs(n, 85)
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, x, b); r > 1e-11 {
		t.Fatalf("residual %g", r)
	}
}

func TestFactorizeBTFRefactorize(t *testing.T) {
	a := reducibleMatrix(86)
	f, err := FactorizeBTF(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a2 := a.Clone()
	for i := range a2.Val {
		a2.Val[i] *= 1.7
	}
	if err := f.Refactorize(a2); err != nil {
		t.Fatal(err)
	}
	b := rhs(a.N, 87)
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a2, x, b); r > 1e-10 {
		t.Fatalf("refactorized residual %g", r)
	}
}

func TestFactorizeBTFErrors(t *testing.T) {
	if _, err := FactorizeBTF(NewCOO(0, 0).ToCSR(), DefaultOptions()); err == nil {
		t.Fatal("expected empty-matrix rejection")
	}
	if _, err := FactorizeBTF(GenDense(4, 1), DefaultOptions()); err != nil {
		t.Fatalf("dense should factor as one block: %v", err)
	}
	// Numerically singular 1x1 block: [2x2 upper triangular with zero
	// diagonal value but structural entry].
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 0) // stored zero
	coo.Add(0, 1, 1)
	coo.Add(1, 1, 1)
	if _, err := FactorizeBTF(coo.ToCSR(), DefaultOptions()); err == nil {
		t.Fatal("expected singular 1x1 block error")
	}
}
