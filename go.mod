module sstar

go 1.22
