// Reservoir: an implicit time-stepping loop in the style of the oil-reservoir
// simulations behind the orsreg1/saylr4 matrices of the paper's suite. The
// Jacobian's *pattern* is fixed by the grid while its *values* change every
// Newton step, so the expensive analyze phase (transversal, minimum degree,
// static symbolic factorization, supernode partition) runs once and each step
// pays only the numeric refactorization — exactly the workload the S* static
// design is built for.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"sstar"
)

const (
	nx, ny, nz = 18, 18, 5 // orsreg1-like 3D grid
	steps      = 8
)

func main() {
	base := sstar.GenGrid3D(nx, ny, nz, sstar.GenOptions{
		Convection: 0.3,
		Anisotropy: 0.5,
		Seed:       11,
	})
	fmt.Printf("reservoir grid %dx%dx%d: %d unknowns, %d nonzeros\n", nx, ny, nz, base.N, base.Nnz())

	analyzeStart := time.Now()
	fact, err := sstar.Factorize(base, sstar.DefaultOptions())
	if err != nil {
		log.Fatalf("initial factorization: %v", err)
	}
	fmt.Printf("analyze+first factor: %v, fill %d entries in %d panels\n\n",
		time.Since(analyzeStart).Round(time.Millisecond), fact.FillIn(), fact.Blocks())

	// Pressure state evolves; each implicit step perturbs the Jacobian
	// values (mobility changes with saturation) but not its pattern.
	rng := rand.New(rand.NewSource(12))
	pressure := make([]float64, base.N)
	for i := range pressure {
		pressure[i] = 100 + 10*rng.Float64()
	}
	jac := base.Clone()
	var refacTotal time.Duration
	for step := 1; step <= steps; step++ {
		// Perturb the Jacobian values (same sparsity pattern!).
		for k := range jac.Val {
			jac.Val[k] = base.Val[k] * (1 + 0.1*math.Sin(float64(step)*0.7+float64(k)*1e-3))
		}
		start := time.Now()
		if err := fact.Refactorize(jac); err != nil {
			log.Fatalf("step %d: %v", step, err)
		}
		refacTotal += time.Since(start)

		// Newton-ish update: solve J dx = r for a synthetic residual.
		r := make([]float64, base.N)
		jac.MulVec(pressure, r)
		for i := range r {
			r[i] -= 95 // production target
		}
		dx, err := fact.Solve(r)
		if err != nil {
			log.Fatalf("step %d solve: %v", step, err)
		}
		norm := 0.0
		for i := range dx {
			pressure[i] -= 0.5 * dx[i]
			norm += dx[i] * dx[i]
		}
		fmt.Printf("step %d: refactor+solve ok, ||dx|| = %10.4f, residual %.2e\n",
			step, math.Sqrt(norm), sstar.Residual(jac, dx, r))
	}
	fmt.Printf("\n%d refactorizations in %v (%v each) — symbolic work paid once\n",
		steps, refacTotal.Round(time.Millisecond), (refacTotal / steps).Round(time.Millisecond))
}
