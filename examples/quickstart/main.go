// Quickstart: assemble a small nonsymmetric sparse system, factorize it with
// S* and solve. This is the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"sstar"
)

func main() {
	// A convection-diffusion operator on a 40x40 grid: nonsymmetric values,
	// a few deliberately weak diagonal entries so partial pivoting matters.
	a := sstar.GenGrid2D(40, 40, false, sstar.GenOptions{
		Convection:       0.6,
		WeakDiagFraction: 0.05,
		Seed:             7,
	})
	fmt.Printf("matrix: %d unknowns, %d nonzeros\n", a.N, a.Nnz())

	f, err := sstar.Factorize(a, sstar.DefaultOptions())
	if err != nil {
		log.Fatalf("factorize: %v", err)
	}
	fmt.Printf("factors: %d storage entries in %d supernode panels (static fill %d)\n",
		f.FillIn(), f.Blocks(), f.StaticFill())

	// Solve A x = b for a manufactured solution x* = (1, 2, 3, ...).
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = float64(i%10) + 1
	}
	b := make([]float64, a.N)
	a.MulVec(xTrue, b)

	x, err := f.Solve(b)
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	maxErr := 0.0
	for i := range x {
		if d := x[i] - xTrue[i]; d > maxErr {
			maxErr = d
		} else if -d > maxErr {
			maxErr = -d
		}
	}
	fmt.Printf("residual: %.3e, max error vs manufactured solution: %.3e\n",
		sstar.Residual(a, x, b), maxErr)
}
