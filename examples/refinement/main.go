// Refinement: solving a badly scaled, ill-conditioned system the way a
// production solver would — equilibrate, factorize with threshold pivoting,
// estimate the condition number, and polish the solution with iterative
// refinement until the componentwise backward error hits machine precision.
package main

import (
	"fmt"
	"log"
	"math"

	"sstar"
)

func main() {
	// A circuit-like system whose rows span twelve orders of magnitude —
	// the kind of scaling a device simulator produces.
	a := sstar.GenCircuit(800, 4, sstar.GenOptions{Seed: 91, Convection: 0.5})
	for i := 0; i < a.N; i++ {
		_, vals := a.Row(i)
		s := math.Pow(10, float64(i%13)-6)
		for k := range vals {
			vals[k] *= s
		}
	}
	fmt.Printf("system: %d unknowns, %d nonzeros, row scales 1e-6..1e+6\n\n", a.N, a.Nnz())

	// Step 1: equilibrate.
	scaled, rowScale, colScale := sstar.Equilibrate(a)

	// Step 2: factorize with relaxed (threshold) pivoting — fewer
	// interchanges, cheaper communication in the parallel codes.
	opts := sstar.DefaultOptions()
	opts.PivotThreshold = 0.1
	f, err := sstar.Factorize(scaled, opts)
	if err != nil {
		log.Fatalf("factorize: %v", err)
	}
	st := f.Stats(scaled)
	fmt.Printf("factors: %d entries, %d interchanges, pivot growth %.2f, BLAS-3 share %.0f%%\n",
		st.StorageEntries, st.Interchanges, st.GrowthFactor, 100*st.Blas3Fraction)

	// Step 3: condition estimate on the scaled system.
	fmt.Printf("estimated cond_1(scaled A): %.2e\n\n", f.CondEst(scaled))

	// Step 4: solve + iterative refinement against the *scaled* system,
	// then unscale.
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i))
	}
	b := make([]float64, a.N)
	a.MulVec(xTrue, b)
	rb := make([]float64, a.N)
	for i := range rb {
		rb[i] = rowScale[i] * b[i]
	}
	y, err := f.Solve(rb)
	if err != nil {
		log.Fatal(err)
	}
	res := f.Refine(scaled, y, rb, 1e-15, 8)
	fmt.Printf("iterative refinement: %d iterations, backward error %.2e (converged=%v)\n",
		res.Iterations, res.Berr, res.Converged)

	x := make([]float64, a.N)
	for j := range x {
		x[j] = colScale[j] * y[j]
	}
	maxErr := 0.0
	for i := range x {
		if d := math.Abs(x[i] - xTrue[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("original system: residual %.2e, max forward error %.2e\n",
		sstar.Residual(a, x, b), maxErr)
}
