// Taskgraph: the paper's worked example. A small sparse matrix is partitioned
// into supernode blocks (Fig. 4), the Factor/Update task DAG is built with
// the Section 4 dependence rules (Fig. 9), and the compute-ahead schedule is
// compared against critical-path graph scheduling on two processors with
// Gantt charts (Fig. 11) — showing why graph scheduling overlaps
// communication better than one-step lookahead.
package main

import (
	"fmt"

	"sstar/internal/core"
	"sstar/internal/machine"
	"sstar/internal/sched"
	"sstar/internal/sparse"
	"sstar/internal/supernode"
	"sstar/internal/taskgraph"
)

func main() {
	// A 7x7-block-spirited sparse matrix: enough structure for a
	// non-trivial DAG with both sparse and chained updates.
	coo := sparse.NewCOO(14, 14)
	add := func(i, j int) { coo.Add(i, j, 1+0.1*float64(i)+0.01*float64(j)) }
	for i := 0; i < 14; i++ {
		add(i, i)
	}
	pairs := [][2]int{
		{0, 1}, {1, 0}, {0, 6}, {6, 0}, {2, 3}, {3, 2}, {2, 8}, {8, 2},
		{4, 5}, {5, 4}, {4, 10}, {10, 4}, {6, 7}, {7, 6}, {8, 9}, {9, 8},
		{10, 11}, {11, 10}, {12, 13}, {13, 12}, {1, 12}, {12, 1}, {9, 13}, {13, 9},
		{5, 11}, {11, 5}, {7, 13},
	}
	for _, p := range pairs {
		add(p[0], p[1])
	}
	a := coo.ToCSR()

	sym := core.Analyze(a, core.AnalyzeOptions{
		SkipOrdering: true, // keep the hand-built structure visible
		Supernode:    supernode.Options{MaxBlock: 2, Amalgamate: 2},
	})
	p := sym.Partition
	fmt.Printf("matrix %dx%d partitioned into %d supernode blocks:\n", a.N, a.N, p.NB)
	for b := 0; b < p.NB; b++ {
		fmt.Printf("  block %d: columns %d..%d, U blocks %v, L blocks %v\n",
			b, p.Start[b], p.Start[b+1]-1, p.UBlocks[b], p.LBlocks[b])
	}

	g := taskgraph.Build(p)
	fmt.Printf("\ntask graph (Fig. 9 style): %d tasks\n", len(g.Tasks))
	for _, t := range g.Tasks {
		if len(t.Succ) == 0 {
			continue
		}
		fmt.Printf("  %-8s ->", t.Label())
		for _, s := range t.Succ {
			fmt.Printf(" %s", g.Tasks[s].Label())
		}
		fmt.Println()
	}

	// Unit-ish weights as in the paper's Fig. 11 example: every task costs
	// 2, every cross-processor message 1.
	w := make([]float64, len(g.Tasks))
	for i := range w {
		w[i] = 2
	}
	comm := func(int) float64 { return 1 }
	cp, _ := g.CriticalPath(w)
	fmt.Printf("\ncritical path: %.0f time units; total work %.0f\n", cp, g.TotalWork(w))

	for _, kind := range []string{"compute-ahead", "graph-scheduled"} {
		var s *sched.Schedule
		if kind == "compute-ahead" {
			s = sched.ComputeAhead(g, 2)
		} else {
			s = sched.ListSchedule(g, 2, w, comm)
		}
		entries, makespan := simulate(g, s, w, comm)
		fmt.Printf("\n%s schedule on 2 processors (makespan %.0f):\n%s",
			kind, makespan, taskgraph.RenderGantt(g, entries, 2))
	}

	// Finally, confirm on the virtual machine that the graph-scheduled run
	// also wins with the real kernel weights.
	model := machine.Unit()
	ca, err := core.Factorize1D(a, sym, model, core.ScheduleCA(sym, 2))
	if err != nil {
		panic(err)
	}
	ra, err := core.Factorize1D(a, sym, model, core.ScheduleRAPID(sym, 2, model))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nvirtual-machine confirmation: PT(CA) = %.1f, PT(graph) = %.1f\n",
		ca.ParallelTime, ra.ParallelTime)
}

// simulate plays a schedule with blocking receives and unit-model costs,
// returning the Gantt entries and the makespan.
func simulate(g *taskgraph.Graph, s *sched.Schedule, w []float64, comm func(int) float64) ([]taskgraph.GanttEntry, float64) {
	finish := make([]float64, len(g.Tasks))
	procOf := make([]int, len(g.Tasks))
	for p := 0; p < s.P; p++ {
		for _, id := range s.Order[p] {
			procOf[id] = p
		}
	}
	var entries []taskgraph.GanttEntry
	avail := make([]float64, s.P)
	// Repeatedly sweep the per-processor queues, running the first task
	// whose predecessors are done (mirrors blocking execution).
	idx := make([]int, s.P)
	done := make([]bool, len(g.Tasks))
	remaining := len(g.Tasks)
	for remaining > 0 {
		progress := false
		for p := 0; p < s.P; p++ {
			if idx[p] >= len(s.Order[p]) {
				continue
			}
			id := s.Order[p][idx[p]]
			ready := avail[p]
			ok := true
			for _, pred := range g.Tasks[id].Pred {
				if !done[pred] {
					ok = false
					break
				}
				t := finish[pred]
				if procOf[pred] != p {
					t += comm(g.Tasks[pred].CommBytes)
				}
				if t > ready {
					ready = t
				}
			}
			if !ok {
				continue
			}
			finish[id] = ready + w[id]
			avail[p] = finish[id]
			done[id] = true
			remaining--
			idx[p]++
			progress = true
			entries = append(entries, taskgraph.GanttEntry{Task: id, Proc: p, Start: ready, End: finish[id]})
		}
		if !progress {
			panic("schedule deadlock in simulation")
		}
	}
	makespan := 0.0
	for _, f := range finish {
		if f > makespan {
			makespan = f
		}
	}
	return entries, makespan
}
