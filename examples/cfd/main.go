// CFD: factor a goodwin-style fluid-dynamics matrix (4 unknowns per grid
// node, strongly nonsymmetric) with every parallel strategy the paper
// studies, and print the Section-6-style comparison: parallel time, MFLOPS,
// communication volume and load balance on the virtual T3E across processor
// counts. The shape to look for matches the paper: 1D RAPID beats 1D CA and
// the 2D code at modest P, while the 2D asynchronous code scales furthest.
package main

import (
	"fmt"
	"log"

	"sstar"
)

func main() {
	a := sstar.GenGrid2D(30, 30, true, sstar.GenOptions{
		DOF:        4,
		Convection: 0.6,
		Seed:       21,
	})
	fmt.Printf("CFD matrix: %d unknowns, %d nonzeros (goodwin family, scaled)\n\n", a.N, a.Nnz())

	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}

	fmt.Printf("%-10s %4s  %12s %9s %10s %12s %8s\n",
		"mapping", "P", "par.time(s)", "MFLOPS", "messages", "bytes", "balance")
	for _, mapping := range []sstar.Mapping{sstar.Map1DCA, sstar.Map1DRAPID, sstar.Map2DSync, sstar.Map2D} {
		for _, p := range []int{4, 16, 64} {
			opts := sstar.DefaultOptions()
			opts.Procs = p
			opts.Machine = sstar.T3E
			opts.Mapping = mapping
			f, err := sstar.Factorize(a, opts)
			if err != nil {
				log.Fatalf("%s P=%d: %v", mapping, p, err)
			}
			stats := f.RunStats()
			x, err := f.Solve(b)
			if err != nil {
				log.Fatal(err)
			}
			if r := sstar.Residual(a, x, b); r > 1e-10 {
				log.Fatalf("%s P=%d: residual %g", mapping, p, r)
			}
			fmt.Printf("%-10s %4d  %12.4f %9.1f %10d %12d %8.3f\n",
				mapping, p, stats.ParallelTime, stats.MFLOPS,
				stats.SentMessages, stats.SentBytes, stats.LoadBalance)
		}
		fmt.Println()
	}
	fmt.Println("every mapping produced the same solution (residual < 1e-10)")
}
