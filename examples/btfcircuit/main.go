// BTF circuit: large circuit systems are often *reducible* — signal flows
// mostly one way between sub-circuits, so after a block-triangular
// permutation only the strongly coupled cores need LU factorization and the
// rest solves by substitution. This example builds a cascade of amplifier
// stages with feedback inside each stage but none between stages, compares
// the monolithic S* factorization against FactorizeBTF, and checks both give
// the same answer.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"sstar"
)

func main() {
	const stages = 24
	const stageSize = 60
	rng := rand.New(rand.NewSource(99))
	n := stages * stageSize
	coo := sstar.NewCOO(n, n)
	for s := 0; s < stages; s++ {
		lo := s * stageSize
		// Internal feedback: each stage is strongly connected.
		for i := 0; i < stageSize; i++ {
			coo.Add(lo+i, lo+i, 6+rng.Float64())
			coo.Add(lo+i, lo+(i+1)%stageSize, -1-rng.Float64())
			for k := 0; k < 3; k++ {
				coo.Add(lo+i, lo+rng.Intn(stageSize), 0.4*rng.Float64())
			}
		}
		// Forward coupling into the next stage only (no feedback between
		// stages): the whole system is block upper triangular once the
		// stages are ordered... the other way.
		if s+1 < stages {
			for k := 0; k < 8; k++ {
				coo.Add(lo+rng.Intn(stageSize), lo+stageSize+rng.Intn(stageSize), 0.7)
			}
		}
	}
	a := coo.ToCSR()
	// Scramble: the solver must *discover* the stage structure.
	a = a.Permute(rng.Perm(n), rng.Perm(n))
	fmt.Printf("cascade: %d unknowns (%d stages x %d), %d nonzeros, scrambled\n",
		n, stages, stageSize, a.Nnz())

	b := make([]float64, n)
	for i := range b {
		b[i] = rng.Float64()
	}

	t0 := time.Now()
	mono, err := sstar.Factorize(a, sstar.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	tMono := time.Since(t0)
	xm, _ := mono.Solve(b)

	t0 = time.Now()
	btf, err := sstar.FactorizeBTF(a, sstar.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	tBTF := time.Since(t0)
	xb, err := btf.Solve(b)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmonolithic: factored %d unknowns as one system in %v (fill %d)\n",
		n, tMono.Round(time.Millisecond), mono.FillIn())
	fmt.Printf("BTF:        found %d irreducible blocks (largest %d), factored %.0f%% of the matrix in %v\n",
		btf.NumBlocks(), maxInt(btf.BlockSizes()), 100*btf.FactoredFraction(), tBTF.Round(time.Millisecond))

	maxDiff := 0.0
	for i := range xm {
		if d := xm[i] - xb[i]; d > maxDiff {
			maxDiff = d
		} else if -d > maxDiff {
			maxDiff = -d
		}
	}
	fmt.Printf("\nresiduals: monolithic %.2e, BTF %.2e; max solution difference %.2e\n",
		sstar.Residual(a, xm, b), sstar.Residual(a, xb, b), maxDiff)
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
