package sstar

import (
	"fmt"
	"io"

	"sstar/internal/core"
	"sstar/internal/sparse"
	"sstar/internal/wire"
)

// The on-disk format is a sequence of internal/wire frames (length-prefixed,
// CRC-32-checked gob payloads): one header frame identifying the format,
// then one section frame per component. The checksums make Load fail
// cleanly — never panic, never return silently corrupt factors — on any
// truncated or bit-flipped stream.
const (
	serialMagic   = "sstar-lu"
	serialVersion = 2 // v2: wire-framed with checksums + pattern fingerprint trailer

	analysisMagic   = "sstar-an"
	analysisVersion = 1

	frameHeader  byte = 0x48 // 'H'
	frameSection byte = 0x53 // 'S'
)

type serialHeader struct {
	Magic   string
	Version int
}

// serialTrailer carries the pattern fingerprint so a loaded factorization
// keeps rejecting mismatched-pattern Refactorize calls.
type serialTrailer struct {
	PatHash uint64
	PatNnz  int
}

// Save writes the complete factorization (symbolic analysis, numeric factors
// and pivot sequence) to w in a self-contained binary format, so an expensive
// factorization can be computed once and reused across processes.
func (f *Factorization) Save(w io.Writer) error {
	if err := wire.WriteGob(w, frameHeader, serialHeader{Magic: serialMagic, Version: serialVersion}); err != nil {
		return fmt.Errorf("sstar: save header: %w", err)
	}
	sections := []struct {
		name string
		v    any
	}{
		{"symbolic", f.sym},
		{"factors", f.fact.BM},
		{"pivots", f.fact.Piv},
		{"flop counts", f.fact.Fl},
		{"trailer", serialTrailer{PatHash: f.patHash, PatNnz: f.patNnz}},
	}
	for _, s := range sections {
		if err := wire.WriteGob(w, frameSection, s.v); err != nil {
			return fmt.Errorf("sstar: save %s: %w", s.name, err)
		}
	}
	return nil
}

// Load reads a factorization previously written by Save. The result supports
// every solve variant (Solve, SolveTranspose, SolveMany, Refine, ...) and
// Refactorize with same-pattern matrices. Corrupt input of any kind —
// truncation, flipped bits, wrong format — returns an error; Load never
// panics.
func Load(r io.Reader) (*Factorization, error) {
	var h serialHeader
	if err := wire.ReadGob(r, frameHeader, 1<<16, &h); err != nil {
		return nil, fmt.Errorf("sstar: load header: %w", err)
	}
	if h.Magic != serialMagic {
		return nil, fmt.Errorf("sstar: not a factorization stream")
	}
	if h.Version != serialVersion {
		return nil, fmt.Errorf("sstar: unsupported format version %d", h.Version)
	}
	fact := &core.Factorization{}
	var sym core.Symbolic
	var tr serialTrailer
	sections := []struct {
		name string
		v    any
	}{
		{"symbolic", &sym},
		{"factors", &fact.BM},
		{"pivots", &fact.Piv},
		{"flop counts", &fact.Fl},
		{"trailer", &tr},
	}
	for _, s := range sections {
		if err := wire.ReadGob(r, frameSection, 0, s.v); err != nil {
			return nil, fmt.Errorf("sstar: load %s: %w", s.name, err)
		}
	}
	if sym.N <= 0 || sym.Partition == nil || sym.Static == nil || fact.BM == nil {
		return nil, fmt.Errorf("sstar: factorization stream is incomplete")
	}
	fact.Sym = &sym
	return &Factorization{sym: &sym, fact: fact, patHash: tr.PatHash, patNnz: tr.PatNnz}, nil
}

// analysisHeaderSections carries everything an Analysis holds beyond the
// gob-heavy symbolic structure: the options it was computed with and the
// analyzed pattern (CSR, no values).
type analysisMeta struct {
	Opts Options
	N    int
	Ptr  []int
	Ind  []int
	Key  uint64
}

// Save writes the complete analysis (options, analyzed pattern, symbolic
// structure) to w in a self-contained binary format, so an expensive analyze
// phase can be computed once and shared across processes — the cluster
// replicates analysis-cache entries between shards through exactly this
// format. The Observer option is a local-process hook and is not serialized.
func (an *Analysis) Save(w io.Writer) error {
	if err := wire.WriteGob(w, frameHeader, serialHeader{Magic: analysisMagic, Version: analysisVersion}); err != nil {
		return fmt.Errorf("sstar: save analysis header: %w", err)
	}
	opts := an.opts
	opts.Observer = nil
	meta := analysisMeta{Opts: opts, N: an.pat.N, Ptr: an.pat.Ptr, Ind: an.pat.Ind, Key: an.key}
	if err := wire.WriteGob(w, frameSection, meta); err != nil {
		return fmt.Errorf("sstar: save analysis meta: %w", err)
	}
	if err := wire.WriteGob(w, frameSection, an.sym); err != nil {
		return fmt.Errorf("sstar: save analysis symbolic: %w", err)
	}
	return nil
}

// LoadAnalysis reads an analysis previously written by Analysis.Save. The
// result behaves exactly like a freshly computed Analysis: FactorizeWith
// produces bit-identical factors, Matches verifies patterns, Key reports the
// structure key. Corrupt input of any kind returns an error, never a panic.
func LoadAnalysis(r io.Reader) (*Analysis, error) {
	var h serialHeader
	if err := wire.ReadGob(r, frameHeader, 1<<16, &h); err != nil {
		return nil, fmt.Errorf("sstar: load analysis header: %w", err)
	}
	if h.Magic != analysisMagic {
		return nil, fmt.Errorf("sstar: not an analysis stream")
	}
	if h.Version != analysisVersion {
		return nil, fmt.Errorf("sstar: unsupported analysis format version %d", h.Version)
	}
	var meta analysisMeta
	if err := wire.ReadGob(r, frameSection, 0, &meta); err != nil {
		return nil, fmt.Errorf("sstar: load analysis meta: %w", err)
	}
	var sym core.Symbolic
	if err := wire.ReadGob(r, frameSection, 0, &sym); err != nil {
		return nil, fmt.Errorf("sstar: load analysis symbolic: %w", err)
	}
	if meta.N <= 0 || len(meta.Ptr) != meta.N+1 || sym.N != meta.N || sym.Partition == nil || sym.Static == nil {
		return nil, fmt.Errorf("sstar: analysis stream is incomplete")
	}
	return &Analysis{
		sym:  &sym,
		opts: meta.Opts,
		pat:  &sparse.Pattern{N: meta.N, Ptr: meta.Ptr, Ind: meta.Ind},
		key:  meta.Key,
	}, nil
}
