package sstar

import (
	"encoding/gob"
	"fmt"
	"io"

	"sstar/internal/core"
)

// Save writes the complete factorization (symbolic analysis, numeric factors
// and pivot sequence) to w in a self-contained binary format, so an expensive
// factorization can be computed once and reused across processes.
func (f *Factorization) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(serialHeader{Magic: serialMagic, Version: serialVersion}); err != nil {
		return fmt.Errorf("sstar: save header: %w", err)
	}
	if err := enc.Encode(f.sym); err != nil {
		return fmt.Errorf("sstar: save symbolic: %w", err)
	}
	if err := enc.Encode(f.fact.BM); err != nil {
		return fmt.Errorf("sstar: save factors: %w", err)
	}
	if err := enc.Encode(f.fact.Piv); err != nil {
		return fmt.Errorf("sstar: save pivots: %w", err)
	}
	if err := enc.Encode(f.fact.Fl); err != nil {
		return fmt.Errorf("sstar: save flop counts: %w", err)
	}
	return nil
}

// Load reads a factorization previously written by Save. The result supports
// every solve variant (Solve, SolveTranspose, SolveMany, Refine, ...) and
// Refactorize with same-pattern matrices.
func Load(r io.Reader) (*Factorization, error) {
	dec := gob.NewDecoder(r)
	var h serialHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("sstar: load header: %w", err)
	}
	if h.Magic != serialMagic {
		return nil, fmt.Errorf("sstar: not a factorization stream")
	}
	if h.Version != serialVersion {
		return nil, fmt.Errorf("sstar: unsupported format version %d", h.Version)
	}
	fact := &core.Factorization{}
	var sym core.Symbolic
	if err := dec.Decode(&sym); err != nil {
		return nil, fmt.Errorf("sstar: load symbolic: %w", err)
	}
	if err := dec.Decode(&fact.BM); err != nil {
		return nil, fmt.Errorf("sstar: load factors: %w", err)
	}
	if err := dec.Decode(&fact.Piv); err != nil {
		return nil, fmt.Errorf("sstar: load pivots: %w", err)
	}
	if err := dec.Decode(&fact.Fl); err != nil {
		return nil, fmt.Errorf("sstar: load flop counts: %w", err)
	}
	fact.Sym = &sym
	return &Factorization{sym: &sym, fact: fact}, nil
}

const (
	serialMagic   = "sstar-lu"
	serialVersion = 1
)

type serialHeader struct {
	Magic   string
	Version int
}
