package sstar

import (
	"testing"
)

func TestAnalyzeFactorizeWith(t *testing.T) {
	a := GenGrid2D(12, 12, false, GenOptions{Seed: 11, Convection: 0.2})
	an, err := Analyze(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if an.N() != a.N || an.Nnz() != a.Nnz() {
		t.Fatalf("analysis dims: N=%d nnz=%d, want %d/%d", an.N(), an.Nnz(), a.N, a.Nnz())
	}
	if an.StaticFill() <= a.Nnz() || an.Blocks() <= 0 {
		t.Fatal("analysis metadata broken")
	}
	// The same analysis serves several same-pattern matrices.
	for s := int64(0); s < 3; s++ {
		m := a.Clone()
		for i := range m.Val {
			m.Val[i] *= 1 + 0.1*float64(s)
		}
		if !an.Matches(m) {
			t.Fatal("Matches rejects a same-pattern matrix")
		}
		f, err := an.FactorizeWith(m)
		if err != nil {
			t.Fatal(err)
		}
		b := rhs(m.N, 40+s)
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := Residual(m, x, b); r > 1e-10 {
			t.Fatalf("seed %d residual %g", s, r)
		}
	}
}

func TestFactorizeWithMatchesFactorize(t *testing.T) {
	a := GenCircuit(300, 6, GenOptions{Seed: 5})
	f1, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := an.FactorizeWith(a)
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(a.N, 6)
	x1, _ := f1.Solve(b)
	x2, _ := f2.Solve(b)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("FactorizeWith diverges from Factorize at %d", i)
		}
	}
}

func TestFactorizeWithRejectsMismatch(t *testing.T) {
	a := GenGrid2D(8, 8, false, GenOptions{Seed: 1})
	an, err := Analyze(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.FactorizeWith(nil); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if _, err := an.FactorizeWith(GenGrid2D(9, 8, false, GenOptions{Seed: 1})); err == nil {
		t.Fatal("wrong-order matrix accepted")
	}
	// Same order, different structure.
	other := GenGrid2D(8, 8, true, GenOptions{Seed: 1})
	if _, err := an.FactorizeWith(other); err == nil {
		t.Fatal("different-pattern matrix accepted")
	}
	if an.Matches(other) {
		t.Fatal("Matches accepts a different pattern")
	}
}

func TestRefactorizeRejectsPatternMismatch(t *testing.T) {
	a := GenGrid2D(8, 8, false, GenOptions{Seed: 3})
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Refactorize(nil); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if err := f.Refactorize(GenGrid2D(9, 9, false, GenOptions{Seed: 3})); err == nil {
		t.Fatal("wrong-order matrix accepted")
	}
	// Same order (64), same generator family, different stencil: the 9-point
	// grid has more nonzeros in a different structure.
	if err := f.Refactorize(GenGrid2D(8, 8, true, GenOptions{Seed: 3})); err == nil {
		t.Fatal("different-pattern matrix accepted by Refactorize")
	}
	// The legitimate path still works after the rejections.
	a2 := a.Clone()
	for i := range a2.Val {
		a2.Val[i] *= 3
	}
	if err := f.Refactorize(a2); err != nil {
		t.Fatal(err)
	}
	b := rhs(a.N, 9)
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a2, x, b); r > 1e-10 {
		t.Fatalf("residual after refactorize %g", r)
	}
}

func TestSolveRejectsBadRHS(t *testing.T) {
	a := GenDense(12, 8)
	f, err := Factorize(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(nil); err == nil {
		t.Fatal("nil rhs accepted")
	}
	if _, err := f.Solve(make([]float64, 5)); err == nil {
		t.Fatal("short rhs accepted")
	}
	if _, err := f.SolveTranspose(make([]float64, 13)); err == nil {
		t.Fatal("long rhs accepted by SolveTranspose")
	}
	if _, err := f.SolveMany(make([]float64, 24), 0); err == nil {
		t.Fatal("nrhs=0 accepted by SolveMany")
	}
	if _, err := f.SolveMany(make([]float64, 23), 2); err == nil {
		t.Fatal("short block rhs accepted by SolveMany")
	}
}

func TestStructureKey(t *testing.T) {
	a := GenGrid2D(10, 10, false, GenOptions{Seed: 21})
	o := DefaultOptions()
	k := StructureKey(a, o)
	// Values don't matter.
	b := a.Clone()
	for i := range b.Val {
		b.Val[i] = -b.Val[i] + 0.5
	}
	if StructureKey(b, o) != k {
		t.Fatal("key depends on values")
	}
	// Structure does.
	if StructureKey(GenGrid2D(10, 10, true, GenOptions{Seed: 21}), o) == k {
		t.Fatal("key ignores structure")
	}
	// Options do.
	o2 := o
	o2.BlockSize = 8
	if StructureKey(a, o2) == k {
		t.Fatal("key ignores BlockSize")
	}
	o3 := o
	o3.PivotThreshold = 0.5
	if StructureKey(a, o3) == k {
		t.Fatal("key ignores PivotThreshold")
	}
	an, err := Analyze(a, o)
	if err != nil {
		t.Fatal(err)
	}
	if an.Key() != k {
		t.Fatal("Analysis.Key disagrees with StructureKey")
	}
	if an.Options() != o {
		t.Fatal("Analysis.Options lost the options")
	}
}
