package sstar

import (
	"io"

	"sstar/internal/sparse"
)

// GenOptions re-exports the synthetic generator controls for the public API.
type GenOptions = sparse.GenOptions

// GenGrid2D generates the matrix of a 5-point (or 9-point) stencil on an
// nx-by-ny grid — the reservoir/CFD matrix family of the benchmark suite.
func GenGrid2D(nx, ny int, ninePoint bool, o GenOptions) *Matrix {
	return sparse.Grid2D(nx, ny, ninePoint, o)
}

// GenGrid3D generates a 7-point stencil matrix on an nx-by-ny-by-nz grid.
func GenGrid3D(nx, ny, nz int, o GenOptions) *Matrix {
	return sparse.Grid3D(nx, ny, nz, o)
}

// GenCircuit generates a circuit-simulation-like random matrix.
func GenCircuit(n, avgDeg int, o GenOptions) *Matrix {
	return sparse.Circuit(n, avgDeg, o)
}

// GenDense generates a dense random matrix with a dominant diagonal.
func GenDense(n int, seed int64) *Matrix { return sparse.Dense(n, seed) }

// GenPerturb returns a structural near-miss of a: up to add inserted
// off-diagonal entries and up to del deleted ones (diagonals and last
// entries of a row or column are never deleted, so the result stays
// structurally nonsingular). Deterministic in seed. This is the service
// benchmark's model of pattern churn — the workload Analysis.Patch exists
// for.
func GenPerturb(a *Matrix, add, del int, seed int64) *Matrix {
	return sparse.PerturbPattern(a, add, del, seed)
}

// GenPerturbLocal is GenPerturb with structure-preserving insertions: new
// entries land on length-2 paths of the structure graph (nodes already
// coupled through a neighbor), the churn shape of a simulation service
// editing devices rather than rewiring the whole circuit. Local insertions
// keep the incremental re-analysis cone small, where uniform random ones
// scatter it.
func GenPerturbLocal(a *Matrix, add, del int, seed int64) *Matrix {
	return sparse.PerturbLocal(a, add, del, seed)
}

// ReadMatrixMarket parses a Matrix Market coordinate stream.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return sparse.ReadMatrixMarket(r) }

// ReadHarwellBoeing parses a Harwell–Boeing (RUA/RSA/PUA/...) stream — the
// exchange format of the paper's original benchmark matrices.
func ReadHarwellBoeing(r io.Reader) (*Matrix, error) { return sparse.ReadHarwellBoeing(r) }

// WriteMatrixMarket writes a in Matrix Market coordinate format.
func WriteMatrixMarket(w io.Writer, a *Matrix) error { return sparse.WriteMatrixMarket(w, a) }
