// Sentinel errors of the sstar API. Every factorization entrypoint — the
// in-process Factorize/Refactorize paths and the solver service reached
// through the client package — wraps these, so callers branch on failure
// classes with errors.Is instead of parsing messages:
//
//	_, err := c.Factorize(a, opts)
//	switch {
//	case errors.Is(err, sstar.ErrSingular):      // bad input: do not retry
//	case errors.Is(err, sstar.ErrOverloaded):    // shed before execution: safe to retry
//	case errors.Is(err, sstar.ErrHandleEvicted): // factors gone: factorize again
//	}
//
// The service carries these classes across the wire as a typed code on every
// response (see internal/server.Code), so errors.Is works identically for a
// local Factorize and a remote one.
package sstar

import (
	"errors"

	"sstar/internal/core"
)

var (
	// ErrSingular reports a numerically singular matrix: a pivot search
	// found no nonzero candidate. The input is the problem — retrying the
	// same values cannot succeed.
	ErrSingular = core.ErrSingular

	// ErrBadHandle reports an operation on a factorization handle the
	// service does not know: never created, already freed, or created by a
	// server instance that has since restarted.
	ErrBadHandle = errors.New("sstar: unknown handle")

	// ErrHandleEvicted reports an operation on a handle the service evicted
	// to stay inside its memory budget or because the handle sat idle past
	// its TTL. The factors are gone; factorize again to continue.
	ErrHandleEvicted = errors.New("sstar: factorization handle evicted")

	// ErrOverloaded reports a request the service shed instead of running:
	// its queue wait would have exceeded the request's deadline, or the
	// server is shutting down. A shed request was never executed, so
	// retrying it (with backoff) is always safe, including for
	// non-idempotent operations.
	ErrOverloaded = errors.New("sstar: service overloaded")

	// ErrInternal reports a request that failed inside the server in an
	// unexpected way (a recovered panic). The request may or may not have
	// taken effect; treat it as not retryable.
	ErrInternal = errors.New("sstar: internal service error")

	// ErrRedirect reports a factorize sent to a cluster shard that does not
	// own the matrix structure. The request was not executed; the response
	// names the owning shard, and topology-aware clients re-send there
	// (the client package follows these transparently).
	ErrRedirect = errors.New("sstar: structure owned by another shard")

	// ErrNotOwner reports a handle operation sent to a cluster shard that
	// holds neither the handle nor a replica of it. The request was not
	// executed; the response names the owning shard when the request
	// carried a structure key.
	ErrNotOwner = errors.New("sstar: handle owned by another shard")

	// ErrAmbiguous reports a non-idempotent operation (factorize, free)
	// whose request was delivered but whose outcome is unknown: the
	// connection died between delivery and response. The operation may or
	// may not have executed — blind retry could double-execute, so the
	// router surfaces this typed class instead of guessing. Callers decide
	// with operation-specific knowledge (a factorize can be re-sent and the
	// server coalesces duplicates by structure key; a free can be verified
	// with a cheap solve probe).
	ErrAmbiguous = errors.New("sstar: ambiguous failure, operation may have executed")

	// ErrRedirectLoop reports a request whose cluster redirects never
	// terminated: shards kept naming each other as owner past the client's
	// hop budget. This is a placement disagreement — typically a membership
	// change mid-flight, or a misconfigured fleet (mismatched vnodes) — not
	// a data error. The client error type (client.RedirectLoopError) carries
	// the hop chain for diagnosis.
	ErrRedirectLoop = errors.New("sstar: redirect loop")
)
